#include "sa/source_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "machine/sweep.h"
#include "sim/logging.h"

namespace memento {
namespace {

// =====================================================================
// Tokenizer
// =====================================================================

/** Token classes the rule passes care about. */
enum class TokKind : std::uint8_t { Ident, Number, Punct, Str, CharLit };

struct Tok
{
    TokKind kind;
    std::string text;
    unsigned line;
    /** Number token spelled as a floating literal (1.5, 2e9, 3.f). */
    bool isFloat = false;
};

struct CommentTok
{
    std::string text;
    unsigned line; ///< Line the comment starts on.
};

/**
 * Comment/string-aware scan of one translation unit. Preprocessor
 * lines are consumed whole (recording `#include "..."` targets);
 * comments are kept on the side for the annotation rules; everything
 * else becomes a flat token stream with line numbers.
 */
class Lexer
{
  public:
    explicit Lexer(std::string_view src) : src_(src) { run(); }

    std::vector<Tok> toks;
    std::vector<CommentTok> comments;
    std::vector<IncludeEdge> includes;

  private:
    bool
    startsWith(std::string_view prefix) const
    {
        return src_.substr(pos_, prefix.size()) == prefix;
    }

    char at(std::size_t i) const { return i < src_.size() ? src_[i] : '\0'; }
    char cur() const { return at(pos_); }
    char peek() const { return at(pos_ + 1); }

    void
    advance()
    {
        if (cur() == '\n')
            ++line_;
        ++pos_;
    }

    void
    lexLineComment()
    {
        const unsigned start = line_;
        std::size_t begin = pos_;
        while (pos_ < src_.size() && cur() != '\n')
            advance();
        comments.push_back(
            {std::string(src_.substr(begin, pos_ - begin)), start});
    }

    void
    lexBlockComment()
    {
        const unsigned start = line_;
        std::size_t begin = pos_;
        advance(); // '/'
        advance(); // '*'
        while (pos_ < src_.size() && !(cur() == '*' && peek() == '/'))
            advance();
        if (pos_ < src_.size()) {
            advance();
            advance();
        }
        comments.push_back(
            {std::string(src_.substr(begin, pos_ - begin)), start});
    }

    void
    lexString()
    {
        const unsigned start = line_;
        advance(); // opening quote
        while (pos_ < src_.size() && cur() != '"') {
            if (cur() == '\\')
                advance();
            if (cur() == '\n')
                break; // Unterminated: resynchronize at the newline.
            advance();
        }
        if (cur() == '"')
            advance();
        toks.push_back({TokKind::Str, "", start, false});
    }

    void
    lexRawString()
    {
        // R"delim( ... )delim"
        const unsigned start = line_;
        advance(); // R already consumed by caller; this is '"'
        std::string delim;
        while (pos_ < src_.size() && cur() != '(' && cur() != '\n' &&
               delim.size() < 16) {
            delim += cur();
            advance();
        }
        const std::string close = ")" + delim + "\"";
        while (pos_ < src_.size() && !startsWith(close))
            advance();
        for (std::size_t i = 0; i < close.size() && pos_ < src_.size(); ++i)
            advance();
        toks.push_back({TokKind::Str, "", start, false});
    }

    void
    lexCharLit()
    {
        const unsigned start = line_;
        advance(); // opening quote
        while (pos_ < src_.size() && cur() != '\'') {
            if (cur() == '\\')
                advance();
            if (cur() == '\n')
                break;
            advance();
        }
        if (cur() == '\'')
            advance();
        toks.push_back({TokKind::CharLit, "", start, false});
    }

    void
    lexIdent()
    {
        const unsigned start = line_;
        std::size_t begin = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(cur())) ||
                cur() == '_'))
            advance();
        std::string text(src_.substr(begin, pos_ - begin));
        // Raw-string literal: the R prefix glues to the quote.
        if ((text == "R" || text == "LR" || text == "u8R") && cur() == '"') {
            lexRawString();
            return;
        }
        toks.push_back({TokKind::Ident, std::move(text), start, false});
    }

    void
    lexNumber()
    {
        const unsigned start = line_;
        std::size_t begin = pos_;
        const bool hex = cur() == '0' && (peek() == 'x' || peek() == 'X');
        bool is_float = false;
        while (pos_ < src_.size()) {
            const char c = cur();
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '\'' ||
                c == '.') {
                if (!hex && (c == '.' || c == 'e' || c == 'E' || c == 'f' ||
                             c == 'F'))
                    is_float = true;
                advance();
                // Exponent sign: 1e+9 / 1e-9.
                if (!hex && (c == 'e' || c == 'E') &&
                    (cur() == '+' || cur() == '-'))
                    advance();
                continue;
            }
            break;
        }
        toks.push_back({TokKind::Number,
                        std::string(src_.substr(begin, pos_ - begin)),
                        start, is_float});
    }

    /** A preprocessor directive, consumed to its (continuation-aware)
     * end of line. Records quoted include targets. */
    void
    lexPreproc()
    {
        const unsigned start = line_;
        std::size_t begin = pos_;
        while (pos_ < src_.size()) {
            if (cur() == '\\' && peek() == '\n') {
                advance();
                advance();
                continue;
            }
            if (cur() == '\n')
                break;
            advance();
        }
        const std::string_view dir = src_.substr(begin, pos_ - begin);
        const std::size_t inc = dir.find("include");
        if (inc != std::string_view::npos) {
            const std::size_t open = dir.find('"', inc);
            if (open != std::string_view::npos) {
                const std::size_t close = dir.find('"', open + 1);
                if (close != std::string_view::npos)
                    includes.push_back(
                        {std::string(
                             dir.substr(open + 1, close - open - 1)),
                         start});
            }
        }
    }

    void
    run()
    {
        while (pos_ < src_.size()) {
            const char c = cur();
            if (c == '/' && peek() == '/') {
                lexLineComment();
            } else if (c == '/' && peek() == '*') {
                lexBlockComment();
            } else if (c == '"') {
                lexString();
            } else if (c == '\'') {
                lexCharLit();
            } else if (c == '#') {
                lexPreproc();
            } else if (std::isalpha(static_cast<unsigned char>(c)) ||
                       c == '_') {
                lexIdent();
            } else if (std::isdigit(static_cast<unsigned char>(c))) {
                lexNumber();
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                advance();
            } else {
                // Multi-char operators the rules must not split: `::`
                // (qualifier vs range-for colon) and `->` (member call).
                const unsigned start = line_;
                if (c == ':' && peek() == ':') {
                    advance();
                    advance();
                    toks.push_back({TokKind::Punct, "::", start, false});
                } else if (c == '-' && peek() == '>') {
                    advance();
                    advance();
                    toks.push_back({TokKind::Punct, "->", start, false});
                } else {
                    advance();
                    toks.push_back(
                        {TokKind::Punct, std::string(1, c), start, false});
                }
            }
        }
    }

    std::string_view src_;
    std::size_t pos_ = 0;
    unsigned line_ = 1;
};

// =====================================================================
// Path scoping
// =====================================================================

/** True when @p path contains @p dir as a complete path segment. */
bool
hasSegment(std::string_view path, std::string_view dir)
{
    std::size_t from = 0;
    while (from <= path.size()) {
        std::size_t slash = path.find('/', from);
        if (slash == std::string_view::npos)
            slash = path.size();
        if (path.substr(from, slash - from) == dir)
            return true;
        from = slash + 1;
    }
    return false;
}

bool
hasAnySegment(std::string_view path,
              std::initializer_list<std::string_view> dirs)
{
    for (std::string_view d : dirs) {
        if (hasSegment(path, d))
            return true;
    }
    return false;
}

/** Which path-scoped rules apply to this file. */
struct RuleScope
{
    bool streams = true;  ///< src-naked-cout
    bool random = true;   ///< src-unseeded-random
    bool wallclock = true;///< src-wallclock-in-sim
    bool fatality = true; ///< src-fatal-in-library
};

RuleScope
scopeFor(const std::string &subject)
{
    RuleScope s;
    // The serialized logging layer and the single-threaded CLI /
    // example front ends own the process streams.
    if (subject.find("sim/logging") != std::string::npos ||
        hasAnySegment(subject, {"tools", "examples"}))
        s.streams = false;
    // The seeded deterministic randomness layer.
    if (subject.find("sim/rng") != std::string::npos ||
        subject.find("fleet/arrivals") != std::string::npos ||
        hasAnySegment(subject, {"wl", "examples"}))
        s.random = false;
    // Self-measurement is the one place host time is the *subject*.
    if (hasAnySegment(subject, {"bench", "tools", "examples"}))
        s.wallclock = false;
    // Model-layer code must raise SimError; the user-facing layers
    // (CLI parsing, workload lookup, schema errors) legitimately
    // terminate through fatal(). Unknown paths (e.g. the lint corpus)
    // count as library code.
    if (hasAnySegment(subject, {"sim", "cli", "wl", "an", "sa", "bench",
                                "fleet", "val", "tools", "examples"}) &&
        !hasAnySegment(subject, {"hw", "mem", "os", "rt", "machine"}))
        s.fatality = false;
    return s;
}

// =====================================================================
// Per-file analysis
// =====================================================================

/** Name-indexed inline suppressions: line -> allowed rule ids. */
using AllowMap = std::map<unsigned, std::set<std::string>>;

AllowMap
parseInlineAllows(const std::vector<CommentTok> &comments)
{
    AllowMap allows;
    for (const CommentTok &c : comments) {
        std::size_t at = c.text.find("lint-src:");
        while (at != std::string::npos) {
            const std::size_t open = c.text.find("allow(", at);
            if (open == std::string::npos)
                break;
            const std::size_t close = c.text.find(')', open);
            if (close == std::string::npos)
                break;
            allows[c.line].insert(
                c.text.substr(open + 6, close - open - 6));
            at = c.text.find("lint-src:", close);
        }
    }
    return allows;
}

/** What kind of container a name was declared as, across files. */
struct ContainerSeen
{
    bool unordered = false;
    bool ordered = false;
};

bool
isOrderedContainerName(const std::string &t)
{
    return t == "map" || t == "set" || t == "multimap" ||
           t == "multiset" || t == "vector" || t == "deque" ||
           t == "array" || t == "list" || t == "string";
}

bool
isUnorderedContainerName(const std::string &t)
{
    return t == "unordered_map" || t == "unordered_set" ||
           t == "unordered_multimap" || t == "unordered_multiset";
}

/**
 * Skip a balanced template argument list: @p i indexes the `<` token.
 * Returns the index one past the matching `>`. `>>` closers arrive as
 * two `>` tokens, so plain depth counting works.
 */
std::size_t
skipTemplateArgs(const std::vector<Tok> &toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct)
            continue;
        if (toks[i].text == "<") {
            ++depth;
        } else if (toks[i].text == ">") {
            if (--depth == 0)
                return i + 1;
        } else if (toks[i].text == ";") {
            return i; // Malformed; resynchronize.
        }
    }
    return i;
}

/**
 * Record container-typed declarations: `<container><<args>> [&*const]*
 * name`. Collects the declared name into @p seen with the container's
 * ordering class, for the cross-file unordered-iteration index.
 */
void
scanContainerDeclsInto(const std::vector<Tok> &toks,
                       std::map<std::string, ContainerSeen> &seen)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident)
            continue;
        const bool unordered = isUnorderedContainerName(toks[i].text);
        const bool ordered = isOrderedContainerName(toks[i].text);
        if (!unordered && !ordered)
            continue;
        if (toks[i + 1].kind != TokKind::Punct || toks[i + 1].text != "<")
            continue;
        std::size_t j = skipTemplateArgs(toks, i + 1);
        // Declarator: skip references, pointers, and cv qualifiers.
        while (j < toks.size() &&
               ((toks[j].kind == TokKind::Punct &&
                 (toks[j].text == "&" || toks[j].text == "*")) ||
                (toks[j].kind == TokKind::Ident &&
                 (toks[j].text == "const" || toks[j].text == "constexpr"))))
            ++j;
        if (j >= toks.size() || toks[j].kind != TokKind::Ident)
            continue;
        ContainerSeen &entry = seen[toks[j].text];
        entry.unordered = entry.unordered || unordered;
        entry.ordered = entry.ordered || ordered;
    }
}

/** The per-file rule driver. */
class FileLinter
{
  public:
    FileLinter(const Lexer &lex, const std::string &subject,
               DiagReport &report,
               const std::set<std::string> &unorderedNames)
        : toks_(lex.toks), subject_(subject), report_(report),
          unordered_(unorderedNames), allows_(parseInlineAllows(lex.comments)),
          scope_(scopeFor(subject))
    {
        scanLocalDecls();
        checkUnorderedIteration();
        checkPointerKeys();
        checkIdentifierRules();
        checkDigestFloats();
        checkMutexAnnotations();
        checkComments(lex.comments);
    }

  private:
    // ---- Reporting ----

    void
    finding(const char *rule, unsigned line, std::string msg)
    {
        const auto it = allows_.find(line);
        if (it != allows_.end() && it->second.count(rule) != 0)
            return;
        report_.add(rule, subject_, line, std::move(msg));
    }

    // ---- Token helpers ----

    bool
    isPunct(std::size_t i, std::string_view p) const
    {
        return i < toks_.size() && toks_[i].kind == TokKind::Punct &&
               toks_[i].text == p;
    }

    bool
    isIdent(std::size_t i, std::string_view id) const
    {
        return i < toks_.size() && toks_[i].kind == TokKind::Ident &&
               toks_[i].text == id;
    }

    bool
    isMemberAccess(std::size_t i) const
    {
        return i < toks_.size() && i > 0 &&
               (isPunct(i - 1, ".") || isPunct(i - 1, "->"));
    }

    /**
     * True when the identifier at @p i reads as a free-function call:
     * followed by `(` and not a member access or a declaration. A
     * preceding identifier (`std::uint64_t rand()`) marks a declarator,
     * except `return`, which introduces a call expression.
     */
    bool
    isFreeCall(std::size_t i) const
    {
        if (!isPunct(i + 1, "(") || isMemberAccess(i))
            return false;
        if (i > 0 && toks_[i - 1].kind == TokKind::Ident &&
            toks_[i - 1].text != "return")
            return false;
        return true;
    }

    /** Index one past the `)` matching the `(` at @p i. */
    std::size_t
    skipParens(std::size_t i) const
    {
        int depth = 0;
        for (; i < toks_.size(); ++i) {
            if (isPunct(i, "("))
                ++depth;
            else if (isPunct(i, ")") && --depth == 0)
                return i + 1;
        }
        return i;
    }

    // ---- Local declaration index ----

    void
    scanLocalDecls()
    {
        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Ident)
                continue;
            // `double x` / `float x` declarations (locals, params,
            // members): the digest rule resolves identifiers fed to a
            // DigestBuilder against these.
            if ((toks_[i].text == "double" || toks_[i].text == "float") &&
                toks_[i + 1].kind == TokKind::Ident &&
                (isPunct(i + 2, ";") || isPunct(i + 2, "=") ||
                 isPunct(i + 2, ",") || isPunct(i + 2, ")") ||
                 isPunct(i + 2, "{")))
                floatVars_.insert(toks_[i + 1].text);
            if (toks_[i].text == "DigestBuilder" &&
                toks_[i + 1].kind == TokKind::Ident)
                digestVars_.insert(toks_[i + 1].text);
        }
    }

    // ---- src-unordered-iteration ----

    bool
    isUnorderedVar(const std::string &name) const
    {
        return unordered_.count(name) != 0;
    }

    void
    checkUnorderedIteration()
    {
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            // Range-for whose sequence expression names an unordered
            // container: `for (decl : expr)`.
            if (isIdent(i, "for") && isPunct(i + 1, "(")) {
                const std::size_t end = skipParens(i + 1);
                std::size_t colon = 0;
                int depth = 0;
                for (std::size_t j = i + 1; j < end; ++j) {
                    if (isPunct(j, "("))
                        ++depth;
                    else if (isPunct(j, ")"))
                        --depth;
                    else if (depth == 1 && isPunct(j, ":")) {
                        colon = j;
                        break;
                    }
                }
                for (std::size_t j = colon ? colon + 1 : end; j < end;
                     ++j) {
                    if (toks_[j].kind == TokKind::Ident &&
                        isUnorderedVar(toks_[j].text)) {
                        // Anchor at the container, not the `for`: a
                        // wrapped sequence expression keeps the inline
                        // allow on the same physical line this way.
                        finding("src-unordered-iteration", toks_[j].line,
                                detail::formatMsg(
                                    "range-for over unordered container '",
                                    toks_[j].text,
                                    "': hash order is implementation-"
                                    "defined and leaks into anything "
                                    "this loop feeds (stdout, digests, "
                                    "simulated access order); iterate "
                                    "sorted keys or an ordered mirror"));
                        break;
                    }
                }
            }
            // Iterator walk: `container.begin()` (and friends) on an
            // unordered container.
            if (toks_[i].kind == TokKind::Ident &&
                isUnorderedVar(toks_[i].text) &&
                (isPunct(i + 1, ".") || isPunct(i + 1, "->")) &&
                i + 2 < toks_.size() &&
                (toks_[i + 2].text == "begin" ||
                 toks_[i + 2].text == "cbegin") &&
                isPunct(i + 3, "(")) {
                finding("src-unordered-iteration", toks_[i].line,
                        detail::formatMsg(
                            "iterator over unordered container '",
                            toks_[i].text,
                            "' starts at an implementation-defined "
                            "position; iterate sorted keys or prove "
                            "the traversal order-independent"));
            }
        }
    }

    // ---- src-pointer-key-order ----

    void
    checkPointerKeys()
    {
        for (std::size_t i = 2; i + 1 < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Ident ||
                (toks_[i].text != "map" && toks_[i].text != "set"))
                continue;
            if (!isIdent(i - 2, "std") || !isPunct(i - 1, "::") ||
                !isPunct(i + 1, "<"))
                continue;
            // First template argument: tokens until the key/value comma
            // (or the closing `>`) at nesting depth 1.
            int depth = 0;
            bool pointer_key = false;
            for (std::size_t j = i + 1; j < toks_.size(); ++j) {
                if (isPunct(j, "<")) {
                    ++depth;
                } else if (isPunct(j, ">")) {
                    if (--depth == 0)
                        break;
                } else if (depth == 1 && isPunct(j, ",")) {
                    break;
                } else if (depth == 1 && isPunct(j, "*")) {
                    pointer_key = true;
                } else if (isPunct(j, ";")) {
                    break;
                }
            }
            if (pointer_key) {
                finding("src-pointer-key-order", toks_[i].line,
                        detail::formatMsg(
                            "std::", toks_[i].text,
                            " keyed by a raw pointer iterates in "
                            "allocator address order, which differs "
                            "run to run; key by a stable id (object "
                            "id, name, index) instead"));
            }
        }
    }

    // ---- Identifier-triggered rules ----

    void
    checkIdentifierRules()
    {
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Ident)
                continue;
            const std::string &t = toks_[i].text;
            const bool call = isFreeCall(i);

            if (scope_.random) {
                if ((t == "rand" || t == "srand") && call) {
                    finding("src-unseeded-random", toks_[i].line,
                            detail::formatMsg(
                                t, "() draws from hidden global state; "
                                "use the seeded sim/rng.h Rng so every "
                                "run replays from its spec seed"));
                } else if (t == "random_device" ||
                           t == "random_shuffle") {
                    finding("src-unseeded-random", toks_[i].line,
                            detail::formatMsg(
                                "std::", t,
                                " is nondeterministic across runs; "
                                "derive all randomness from the seeded "
                                "sim/rng.h layer"));
                }
            }

            if (scope_.wallclock) {
                if (t == "system_clock" || t == "high_resolution_clock" ||
                    t == "gettimeofday" || t == "localtime" ||
                    t == "gmtime" || t == "strftime" || t == "mktime" ||
                    (t == "time" && call)) {
                    finding("src-wallclock-in-sim", toks_[i].line,
                            detail::formatMsg(
                                "'", t,
                                "' reads host wall-clock time inside "
                                "simulation/digest code; simulated "
                                "results must derive from the cycle "
                                "ledger only (self-timing belongs in "
                                "bench/ via steady_clock)"));
                }
            }

            if (scope_.streams) {
                if (t == "cout" || t == "cerr" || t == "clog") {
                    finding("src-naked-cout", toks_[i].line,
                            detail::formatMsg(
                                "direct std::", t,
                                " write outside the serialized logging "
                                "layer; parallel workers interleave "
                                "lines and change sweep output — take "
                                "a std::ostream& or report through "
                                "sim/logging.h"));
                } else if ((t == "printf" || t == "fprintf" ||
                            t == "puts" || t == "putchar") &&
                           call) {
                    finding("src-naked-cout", toks_[i].line,
                            detail::formatMsg(
                                t, "() writes to a process stream "
                                "outside the serialized logging layer; "
                                "take a std::ostream& or report "
                                "through sim/logging.h"));
                }
            }

            if (scope_.fatality) {
                if ((t == "fatal" || t == "fatal_if") && call) {
                    finding("src-fatal-in-library", toks_[i].line,
                            detail::formatMsg(
                                t, "() terminates the whole process "
                                "from model-layer code; raise "
                                "SimError (sim/error.h) so --keep-"
                                "going sweeps can isolate the failing "
                                "cell"));
                } else if ((t == "abort" || t == "exit" || t == "_exit" ||
                            t == "_Exit" || t == "quick_exit") &&
                           call) {
                    finding("src-fatal-in-library", toks_[i].line,
                            detail::formatMsg(
                                t, "() terminates the whole process "
                                "from model-layer code; raise "
                                "SimError, or panic() for genuine "
                                "invariant violations"));
                }
            }
        }
    }

    // ---- src-float-accumulation-in-digest ----

    void
    checkDigestFloats()
    {
        if (digestVars_.empty())
            return;
        for (std::size_t i = 0; i + 3 < toks_.size(); ++i) {
            if (toks_[i].kind != TokKind::Ident ||
                digestVars_.count(toks_[i].text) == 0)
                continue;
            if (!isPunct(i + 1, ".") && !isPunct(i + 1, "->"))
                continue;
            if (!isIdent(i + 2, "add") && !isIdent(i + 2, "addByte"))
                continue;
            if (!isPunct(i + 3, "("))
                continue;
            const std::size_t end = skipParens(i + 3);
            for (std::size_t j = i + 4; j < end; ++j) {
                const bool float_tok =
                    (toks_[j].kind == TokKind::Number && toks_[j].isFloat) ||
                    isIdent(j, "double") || isIdent(j, "float") ||
                    (toks_[j].kind == TokKind::Ident &&
                     floatVars_.count(toks_[j].text) != 0);
                if (float_tok) {
                    finding("src-float-accumulation-in-digest",
                            toks_[j].line,
                            "floating-point value fed to the FNV-1a "
                            "digest: FP results depend on rounding and "
                            "summation order across platforms — digest "
                            "the integer state it was derived from "
                            "instead");
                    break;
                }
            }
        }
    }

    // ---- src-mutex-unannotated ----

    struct MemberDecl
    {
        std::string name;
        unsigned line = 0;
        bool annotated = false;
        bool syncPrimitive = false; ///< mutex / once_flag / cv / atomic.
        bool isMutex = false;
    };

    /**
     * Parse one class body starting at the `{` token index @p i;
     * returns one past the matching `}`. Member declarations are
     * recognized by this repo's trailing-underscore convention; a
     * nested class recurses so its members are checked against its own
     * mutexes, not the enclosing class's.
     */
    std::size_t
    parseClassBody(std::size_t i)
    {
        std::vector<MemberDecl> members;
        ++i; // past '{'
        std::vector<const Tok *> stmt;
        bool has_mutex = false;

        const auto flush = [&]() {
            if (!stmt.empty())
                classifyMember(stmt, members, has_mutex);
            stmt.clear();
        };

        while (i < toks_.size() && !isPunct(i, "}")) {
            // Nested class/struct definition.
            if ((isIdent(i, "class") || isIdent(i, "struct")) &&
                i + 1 < toks_.size() &&
                toks_[i + 1].kind == TokKind::Ident) {
                std::size_t j = i + 1;
                while (j < toks_.size() && !isPunct(j, "{") &&
                       !isPunct(j, ";"))
                    ++j;
                if (isPunct(j, "{")) {
                    stmt.clear();
                    i = parseClassBody(j);
                    if (isPunct(i, ";"))
                        ++i;
                    continue;
                }
            }
            // Access specifiers reset the statement.
            if ((isIdent(i, "public") || isIdent(i, "private") ||
                 isIdent(i, "protected")) &&
                isPunct(i + 1, ":")) {
                stmt.clear();
                i += 2;
                continue;
            }
            // A brace at member level is a function body or an
            // initializer: consume it whole.
            if (isPunct(i, "{")) {
                int depth = 0;
                for (; i < toks_.size(); ++i) {
                    if (isPunct(i, "{"))
                        ++depth;
                    else if (isPunct(i, "}") && --depth == 0) {
                        ++i;
                        break;
                    }
                }
                stmt.push_back(nullptr); // Marks "had a braced part".
                continue;
            }
            if (isPunct(i, ";")) {
                flush();
                ++i;
                continue;
            }
            stmt.push_back(&toks_[i]);
            ++i;
        }
        flush();

        if (has_mutex) {
            for (const MemberDecl &m : members) {
                if (m.annotated || m.syncPrimitive)
                    continue;
                finding("src-mutex-unannotated", m.line,
                        detail::formatMsg(
                            "member '", m.name,
                            "' of a mutex-holding class carries no "
                            "MEMENTO_GUARDED_BY / "
                            "MEMENTO_READONLY_AFTER_INIT annotation "
                            "(sim/thread_annotations.h); name the "
                            "synchronization that protects it"));
            }
        }
        return i < toks_.size() ? i + 1 : i;
    }

    void
    classifyMember(const std::vector<const Tok *> &stmt,
                   std::vector<MemberDecl> &members, bool &has_mutex)
    {
        // Skip type aliases, friends, and static members.
        if (stmt.front() != nullptr &&
            (stmt.front()->text == "using" ||
             stmt.front()->text == "typedef" ||
             stmt.front()->text == "friend" ||
             stmt.front()->text == "static" ||
             stmt.front()->text == "template" ||
             stmt.front()->text == "enum"))
            return;

        MemberDecl m;
        int tmpl_depth = 0;
        bool saw_paren_at_top = false;
        const Tok *last_ident_before_init = nullptr;
        bool in_init = false;
        for (const Tok *t : stmt) {
            if (t == nullptr)
                continue; // Braced segment (already consumed).
            if (t->kind == TokKind::Punct) {
                if (t->text == "<")
                    ++tmpl_depth;
                else if (t->text == ">")
                    tmpl_depth = std::max(0, tmpl_depth - 1);
                else if (t->text == "(" && tmpl_depth == 0 && !in_init)
                    saw_paren_at_top = true;
                else if (t->text == "=")
                    in_init = true;
                continue;
            }
            if (t->kind != TokKind::Ident)
                continue;
            if (t->text == "mutex" || t->text == "shared_mutex") {
                m.syncPrimitive = true;
                m.isMutex = true;
            } else if (t->text == "once_flag" ||
                       t->text == "condition_variable" ||
                       t->text == "atomic" || t->text == "atomic_flag") {
                m.syncPrimitive = true;
            } else if (t->text == "MEMENTO_GUARDED_BY" ||
                       t->text == "MEMENTO_READONLY_AFTER_INIT") {
                m.annotated = true;
            }
            if (!in_init) {
                last_ident_before_init = t;
            }
        }
        // Data members follow the repo convention `name_`; anything
        // else at member level (function declarations, constructors)
        // is not a data member. The annotation macro trails the name,
        // so exclude macro identifiers from name position.
        const Tok *name = last_ident_before_init;
        if (name == nullptr || name->text.empty() ||
            name->text.back() != '_' || name->text.front() == '_')
            return;
        if (saw_paren_at_top && !m.annotated)
            return; // Function declaration.
        m.name = name->text;
        m.line = name->line;
        if (m.isMutex)
            has_mutex = true;
        members.push_back(std::move(m));
    }

    void
    checkMutexAnnotations()
    {
        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (!isIdent(i, "class") && !isIdent(i, "struct"))
                continue;
            if (i > 0 && (isIdent(i - 1, "enum") || isIdent(i - 1, "friend")))
                continue;
            if (toks_[i + 1].kind != TokKind::Ident)
                continue;
            // Definition (not a forward declaration): a `{` before the
            // next `;`.
            std::size_t j = i + 1;
            while (j < toks_.size() && !isPunct(j, "{") && !isPunct(j, ";"))
                ++j;
            if (!isPunct(j, "{"))
                continue;
            i = parseClassBody(j) - 1;
        }
    }

    // ---- src-todo-without-issue ----

    void
    checkComments(const std::vector<CommentTok> &comments)
    {
        for (const CommentTok &c : comments) {
            std::size_t at = std::string::npos;
            for (std::string_view marker : {"TODO", "FIXME", "XXX"}) {
                const std::size_t hit = c.text.find(marker);
                if (hit < at)
                    at = hit;
            }
            if (at == std::string::npos)
                continue;
            // An issue reference legitimizes the marker: `(#123)`,
            // `#123`, or `ISSUE-42` anywhere in the same comment.
            bool referenced = c.text.find("ISSUE") != std::string::npos;
            for (std::size_t h = c.text.find('#');
                 !referenced && h != std::string::npos;
                 h = c.text.find('#', h + 1)) {
                if (h + 1 < c.text.size() &&
                    std::isdigit(static_cast<unsigned char>(
                        c.text[h + 1])))
                    referenced = true;
            }
            if (!referenced) {
                finding("src-todo-without-issue", c.line,
                        "work marker without an issue reference; "
                        "anchor it as `(#NNN)` or `ISSUE-NNN` so the "
                        "debt is trackable");
            }
        }
    }

    const std::vector<Tok> &toks_;
    const std::string &subject_;
    DiagReport &report_;
    const std::set<std::string> &unordered_;
    AllowMap allows_;
    RuleScope scope_;
    std::set<std::string> floatVars_;
    std::set<std::string> digestVars_;
};

std::string
readFileOrFatal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "lint-src: cannot open ", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

// =====================================================================
// Public API
// =====================================================================

void
lintSourceText(std::string_view text, const std::string &subject,
               DiagReport &report, SourceScan *scan)
{
    const Lexer lex(text);
    if (scan != nullptr)
        scan->includes = lex.includes;

    std::map<std::string, ContainerSeen> seen;
    scanContainerDeclsInto(lex.toks, seen);
    std::set<std::string> unordered;
    for (const auto &[name, kinds] : seen) {
        if (kinds.unordered && !kinds.ordered)
            unordered.insert(name);
    }
    FileLinter(lex, subject, report, unordered);
}

void
lintSourceFile(const std::string &path, const std::string &key,
               DiagReport &report, SourceScan *scan)
{
    if (scan != nullptr)
        scan->key = key;
    lintSourceText(readFileOrFatal(path), path, report, scan);
}

void
findIncludeCycles(const std::vector<SourceScan> &scans, DiagReport &report)
{
    // Adjacency restricted to scanned keys, neighbors sorted so the
    // traversal (and therefore the report) is deterministic.
    std::map<std::string, std::vector<std::pair<std::string, unsigned>>>
        graph;
    for (const SourceScan &s : scans)
        graph[s.key]; // Ensure every node exists.
    for (const SourceScan &s : scans) {
        for (const IncludeEdge &e : s.includes) {
            if (graph.count(e.target) != 0)
                graph[s.key].emplace_back(e.target, e.line);
        }
    }
    for (auto &[key, edges] : graph)
        std::sort(edges.begin(), edges.end());

    // Iterative Tarjan SCC over the sorted node order.
    struct NodeState
    {
        int index = -1;
        int lowlink = 0;
        bool onStack = false;
    };
    std::map<std::string, NodeState> state;
    std::vector<std::string> stack;
    std::vector<std::vector<std::string>> cycles;
    int next_index = 0;

    struct Frame
    {
        std::string node;
        std::size_t edge = 0;
    };
    for (const auto &[root, unused_] : graph) {
        (void)unused_;
        if (state[root].index != -1)
            continue;
        std::vector<Frame> dfs;
        dfs.push_back({root, 0});
        state[root].index = state[root].lowlink = next_index++;
        state[root].onStack = true;
        stack.push_back(root);
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            const auto &edges = graph[f.node];
            if (f.edge < edges.size()) {
                const std::string &next = edges[f.edge++].first;
                NodeState &ns = state[next];
                if (ns.index == -1) {
                    ns.index = ns.lowlink = next_index++;
                    ns.onStack = true;
                    stack.push_back(next);
                    dfs.push_back({next, 0});
                } else if (ns.onStack) {
                    state[f.node].lowlink =
                        std::min(state[f.node].lowlink, ns.index);
                }
                continue;
            }
            // Node finished: pop an SCC if this is its root.
            NodeState &fs = state[f.node];
            if (fs.lowlink == fs.index) {
                std::vector<std::string> scc;
                while (true) {
                    const std::string top = stack.back();
                    stack.pop_back();
                    state[top].onStack = false;
                    scc.push_back(top);
                    if (top == f.node)
                        break;
                }
                bool self_loop = false;
                for (const auto &[to, line] : graph[f.node]) {
                    (void)line;
                    self_loop = self_loop || to == f.node;
                }
                if (scc.size() > 1 || self_loop)
                    cycles.push_back(std::move(scc));
            }
            const std::string done = f.node;
            dfs.pop_back();
            if (!dfs.empty()) {
                NodeState &parent = state[dfs.back().node];
                parent.lowlink =
                    std::min(parent.lowlink, state[done].lowlink);
            }
        }
    }

    // One finding per cycle, anchored at its smallest member's edge
    // into the cycle, members listed sorted.
    for (std::vector<std::string> &scc : cycles)
        std::sort(scc.begin(), scc.end());
    std::sort(cycles.begin(), cycles.end());
    for (const std::vector<std::string> &scc : cycles) {
        const std::string &anchor = scc.front();
        std::uint64_t line = Diag::kNoLocation;
        for (const auto &[to, at] : graph[anchor]) {
            if (std::find(scc.begin(), scc.end(), to) != scc.end()) {
                line = at;
                break;
            }
        }
        std::ostringstream members;
        for (std::size_t i = 0; i < scc.size(); ++i)
            members << (i == 0 ? "" : " <-> ") << scc[i];
        report.add("src-include-cycle", anchor, line,
                   detail::formatMsg(
                       "include cycle among ", scc.size(),
                       " file(s): ", members.str(),
                       "; break the cycle with a forward declaration "
                       "or an interface split"));
    }
}

std::vector<std::pair<std::string, std::string>>
collectSourceFiles(const std::vector<std::string> &paths)
{
    namespace fs = std::filesystem;
    std::vector<std::pair<std::string, std::string>> files;
    for (const std::string &arg : paths) {
        std::error_code ec;
        const fs::path root(arg);
        if (fs::is_regular_file(root, ec)) {
            files.emplace_back(root.generic_string(),
                               root.filename().generic_string());
            continue;
        }
        fatal_if(!fs::is_directory(root, ec),
                 "lint-src: no such file or directory: ", arg);
        for (fs::recursive_directory_iterator it(root, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".h" && ext != ".cc")
                continue;
            files.emplace_back(
                it->path().generic_string(),
                it->path().lexically_relative(root).generic_string());
        }
        fatal_if(static_cast<bool>(ec), "lint-src: cannot walk ", arg,
                 ": ", ec.message());
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

std::size_t
lintSourcePaths(const std::vector<std::string> &paths, unsigned jobs,
                DiagReport &report)
{
    const auto files = collectSourceFiles(paths);

    // Phase 1: tokenize every file and index container declarations,
    // so a .cc iterating a member its header declared still resolves
    // the container's ordering class. A name is treated as unordered
    // only when *no* scanned declaration of it is ordered — an
    // ambiguous name never fires (lexical scoping is out of budget
    // for a lint pass; missing a finding beats inventing one).
    std::vector<std::string> texts(files.size());
    std::vector<std::map<std::string, ContainerSeen>> decls(files.size());
    parallelFor(files.size(), jobs, [&](std::size_t i) {
        texts[i] = readFileOrFatal(files[i].first);
        const Lexer lex(texts[i]);
        scanContainerDeclsInto(lex.toks, decls[i]);
    });
    std::map<std::string, ContainerSeen> merged;
    for (const auto &d : decls) {
        for (const auto &[name, kinds] : d) {
            ContainerSeen &entry = merged[name];
            entry.unordered = entry.unordered || kinds.unordered;
            entry.ordered = entry.ordered || kinds.ordered;
        }
    }
    std::set<std::string> unordered;
    for (const auto &[name, kinds] : merged) {
        if (kinds.unordered && !kinds.ordered)
            unordered.insert(name);
    }

    // Phase 2: lint each file against the merged index; slots merge in
    // sorted path order, so output is byte-identical at any --jobs.
    std::vector<DiagReport> slots(files.size());
    std::vector<SourceScan> scans(files.size());
    parallelFor(files.size(), jobs, [&](std::size_t i) {
        scans[i].key = files[i].second;
        const Lexer lex(texts[i]);
        scans[i].includes = lex.includes;
        FileLinter(lex, files[i].first, slots[i], unordered);
    });
    for (const DiagReport &slot : slots)
        report.append(slot);

    // Phase 3: cross-file include-cycle pass (deterministic order).
    findIncludeCycles(scans, report);
    return files.size();
}

} // namespace memento
