/**
 * @file
 * Shared diagnostic engine for the static-analysis layer.
 *
 * All sa/ analyzers — the trace checker, the config linter, and the
 * source linter (lint-src) — report through this engine: every finding
 * names a registered rule (stable
 * string id, fixed severity, one-line summary), a subject (workload id
 * or file path), a location (trace op index or config line), and a
 * message. Reports render as sanitizer-style text
 *
 *     aes:1234: error: double free of object 42 (freed at op 1200)
 *         [trace-double-free]
 *
 * or as a versioned JSON document (sim/json.h envelope, kind
 * "diagnostics"), and a DiagPolicy applies `--allow RULE`
 * suppression and `--werror` warning promotion uniformly at render and
 * count time, so suppression never has to be re-implemented per
 * analyzer.
 *
 * Diagnostics are value types appended in analysis order; rendering
 * never reorders them, which is what makes `check all` output
 * byte-identical at any worker count once per-subject reports are
 * merged in subject order.
 */

#ifndef MEMENTO_SA_DIAG_H
#define MEMENTO_SA_DIAG_H

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace memento {

/** Severity of a rule (fixed per rule; --werror promotes at render). */
enum class DiagSeverity : std::uint8_t { Note, Warning, Error };

/** Display name: "note", "warning", "error". */
std::string_view severityName(DiagSeverity severity);

/** One registered analysis rule. */
struct DiagRule
{
    std::string_view id;      ///< Stable slug, e.g. "trace-double-free".
    DiagSeverity severity;
    std::string_view summary; ///< One-liner for the rule table / docs.
};

/** Every rule both analyzers can emit, in rule-table order. */
const std::vector<DiagRule> &allDiagRules();

/** Registry lookup; nullptr when @p id is not a rule. */
const DiagRule *findDiagRule(std::string_view id);

/** One finding. */
struct Diag
{
    /** Sentinel for "no op index / line number". */
    static constexpr std::uint64_t kNoLocation = ~0ull;

    std::string_view ruleId;
    DiagSeverity severity;      ///< The rule's registered severity.
    std::string subject;        ///< Workload id or config file path.
    std::uint64_t location = kNoLocation; ///< Op index or line number.
    std::string message;

    bool hasLocation() const { return location != kNoLocation; }
};

/** Suppression / promotion policy (--allow RULE, --werror). */
struct DiagPolicy
{
    /** Rule ids whose findings are dropped entirely. */
    std::set<std::string, std::less<>> allowed;
    /** Report warnings as errors (exit status and rendering). */
    bool werror = false;

    bool suppressed(std::string_view rule_id) const;
    /** Severity after promotion (Warning -> Error under werror). */
    DiagSeverity effective(DiagSeverity severity) const;
};

/** An ordered collection of findings. */
class DiagReport
{
  public:
    /**
     * Append a finding for the registered rule @p rule_id (severity
     * comes from the registry; unknown ids are a programming error and
     * panic).
     */
    void add(std::string_view rule_id, std::string subject,
             std::uint64_t location, std::string message);

    /** Append every finding of @p other, preserving order. */
    void append(const DiagReport &other);

    const std::vector<Diag> &diags() const { return diags_; }
    bool empty() const { return diags_.empty(); }

    /** Finding counts under @p policy (suppression + promotion). */
    std::size_t errors(const DiagPolicy &policy = {}) const;
    std::size_t warnings(const DiagPolicy &policy = {}) const;
    /** Notes are never promoted by --werror (advisory by design). */
    std::size_t notes(const DiagPolicy &policy = {}) const;

    /** True when @p policy leaves no errors (the exit-0 criterion). */
    bool clean(const DiagPolicy &policy = {}) const;

    /** One text line per non-suppressed finding, in order. */
    void printText(std::ostream &os, const DiagPolicy &policy = {}) const;

    /**
     * The report as a versioned JSON document: the sim/json.h envelope
     * ("schema_version", "kind": "diagnostics"), a "findings" array of
     * objects with stable key order (rule, severity, subject,
     * location, message), and "errors"/"warnings"/"notes" totals.
     * Suppressed
     * findings are omitted and promoted severities are rendered.
     */
    void printJson(std::ostream &os, const DiagPolicy &policy = {}) const;

  private:
    std::vector<Diag> diags_;
};

} // namespace memento

#endif // MEMENTO_SA_DIAG_H
