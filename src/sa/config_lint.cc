#include "sa/config_lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <string_view>
#include <vector>

#include "fleet/arrivals.h"
#include "sim/config_schema.h"
#include "sim/logging.h"
#include "wl/workloads.h"

namespace memento {
namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** memento.* keys that configure hardware the enable bit gates. */
constexpr std::string_view kMementoHardwareKeys[] = {
    "memento.bypass",    "memento.eager_prefetch",
    "memento.mallacc",   "memento.objects_per_arena",
    "memento.hot_latency", "memento.pool_refill",
};

bool
isMementoHardwareKey(std::string_view key)
{
    for (const std::string_view k : kMementoHardwareKeys) {
        if (k == key)
            return true;
    }
    return false;
}

} // namespace

void
lintConfigStream(std::istream &is, const std::string &subject,
                 DiagReport &report)
{
    MachineConfig cfg = defaultConfig();
    std::string line;
    unsigned line_no = 0;
    // key -> line of its latest valid assignment, in line order for the
    // cross-key pass.
    std::map<std::string, unsigned> last_set;
    std::vector<std::pair<std::string, unsigned>> assignments;

    while (std::getline(is, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            report.add("config-parse", subject, line_no,
                       "missing '=' (expected 'key = value')");
            continue;
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty()) {
            report.add("config-parse", subject, line_no,
                       "empty key or value");
            continue;
        }

        const ConfigKeyInfo *info = findConfigKey(key);
        if (info == nullptr) {
            const std::string suggestion = suggestConfigKey(key);
            report.add("config-unknown-key", subject, line_no,
                       detail::formatMsg(
                           "unknown key '", key, "'",
                           suggestion.empty()
                               ? std::string()
                               : "; did you mean '" + suggestion +
                                     "'?"));
            continue;
        }

        const auto [it, inserted] = last_set.emplace(key, line_no);
        if (!inserted) {
            report.add("config-duplicate-key", subject, line_no,
                       detail::formatMsg("duplicate key '", key,
                                         "' overrides line ", it->second,
                                         " (last value wins)"));
            it->second = line_no;
        }

        ConfigValue parsed;
        std::string why;
        switch (tryParseConfigValue(*info, value, parsed, why)) {
          case ConfigParseStatus::BadValue:
            report.add("config-bad-value", subject, line_no,
                       detail::formatMsg(why, " for key '", key, "'"));
            continue;
          case ConfigParseStatus::OutOfRange:
            report.add("config-out-of-range", subject, line_no,
                       detail::formatMsg(why, " for key '", key, "'"));
            continue;
          case ConfigParseStatus::Ok:
            break;
        }
        info->apply(cfg, parsed);
        assignments.emplace_back(key, line_no);
    }

    // ------------------------------------------------------------------
    // Cross-key contradictions on the effective configuration.
    // ------------------------------------------------------------------
    const auto line_of = [&](std::string_view key) -> unsigned {
        const auto it = last_set.find(std::string(key));
        return it == last_set.end() ? 0 : it->second;
    };
    const bool touches_layout = line_of("layout.heap_base") ||
                                line_of("layout.memento_region_start") ||
                                line_of("layout.per_class_region_bytes");

    if (touches_layout) {
        const Addr mrs = cfg.layout.mementoRegionStart;
        const std::uint64_t span =
            cfg.layout.perClassRegionBytes * cfg.memento.numSizeClasses;
        const Addr mre = mrs + span;
        const unsigned at =
            std::max({line_of("layout.heap_base"),
                      line_of("layout.memento_region_start"),
                      line_of("layout.per_class_region_bytes")});
        if (mre <= mrs ||
            span / cfg.memento.numSizeClasses !=
                cfg.layout.perClassRegionBytes) {
            report.add("config-region-overlap", subject, at,
                       detail::formatMsg(
                           "Memento region is inverted: MRE (MRS + ",
                           cfg.memento.numSizeClasses, " x ",
                           cfg.layout.perClassRegionBytes,
                           " bytes) wraps below MRS 0x", std::hex, mrs));
        } else if (cfg.layout.heapBase >= mrs &&
                   cfg.layout.heapBase < mre) {
            report.add("config-region-overlap", subject, at,
                       detail::formatMsg(
                           "heap base 0x", std::hex, cfg.layout.heapBase,
                           " falls inside the Memento region [0x", mrs,
                           ", 0x", mre, ")"));
        } else if (cfg.layout.imageBase >= mrs &&
                   cfg.layout.imageBase < mre) {
            report.add("config-region-overlap", subject, at,
                       detail::formatMsg(
                           "image base 0x", std::hex,
                           cfg.layout.imageBase,
                           " falls inside the Memento region [0x", mrs,
                           ", 0x", mre, ")"));
        }
    }

    if (!cfg.memento.enabled) {
        for (const auto &[key, at] : assignments) {
            if (isMementoHardwareKey(key)) {
                report.add("config-bypass-no-memento", subject, at,
                           detail::formatMsg(
                               "'", key, "' is set but memento.enabled "
                               "is off; the key has no effect"));
            }
        }
    }

    if (cfg.sweep.shardIndex >= cfg.sweep.shardCount &&
        (line_of("sweep.shard_index") || line_of("sweep.shard_count"))) {
        report.add("config-shard-range", subject,
                   std::max(line_of("sweep.shard_index"),
                            line_of("sweep.shard_count")),
                   detail::formatMsg(
                       "sweep.shard_index (", cfg.sweep.shardIndex,
                       ") must be below sweep.shard_count (",
                       cfg.sweep.shardCount,
                       "); this shard selects no workloads"));
    }

    if (cfg.sweep.retries > 0 && !cfg.sweep.keepGoing) {
        report.add("config-retry-no-keep-going", subject,
                   line_of("sweep.retry"),
                   detail::formatMsg(
                       "sweep.retry (", cfg.sweep.retries,
                       ") is set without sweep.keep_going; a cell that "
                       "exhausts its retries still aborts the sweep"));
    }

    if (cfg.check.interval != 0 && cfg.check.maxOps != 0 &&
        cfg.check.interval > cfg.check.maxOps) {
        report.add("config-check-conflict", subject,
                   line_of("check.interval"),
                   detail::formatMsg(
                       "check.interval (", cfg.check.interval,
                       ") exceeds the check.max_ops watchdog budget (",
                       cfg.check.maxOps,
                       "); the invariant checker can never fire"));
    }

    if (line_of("fleet.arrival") && !validArrivalKind(cfg.fleet.arrival)) {
        report.add("config-fleet-bad-arrival", subject,
                   line_of("fleet.arrival"),
                   detail::formatMsg(
                       "fleet.arrival '", cfg.fleet.arrival,
                       "' is not one of poisson, bursty, diurnal"));
    }

    if (line_of("fleet.mix") && cfg.fleet.mix != "function" &&
        cfg.fleet.mix != "all") {
        bool known = false;
        for (const WorkloadSpec &spec : allWorkloads()) {
            if (spec.id == cfg.fleet.mix) {
                known = true;
                break;
            }
        }
        if (!known) {
            report.add("config-fleet-bad-mix", subject,
                       line_of("fleet.mix"),
                       detail::formatMsg(
                           "fleet.mix '", cfg.fleet.mix,
                           "' is neither 'function', 'all', nor a "
                           "workload id"));
        }
    }

    if (line_of("fleet.keep_alive_ms") && cfg.fleet.keepAliveMs > 0 &&
        cfg.fleet.memoryBudgetPages == 0) {
        report.add("config-fleet-keepalive-no-budget", subject,
                   line_of("fleet.keep_alive_ms"),
                   detail::formatMsg(
                       "fleet.keep_alive_ms (", cfg.fleet.keepAliveMs,
                       ") keeps instances warm but "
                       "fleet.memory_budget_pages is 0 (unbounded); "
                       "node RSS can grow without limit"));
    }
}

void
lintConfigFile(const std::string &path, DiagReport &report)
{
    std::ifstream in(path);
    if (!in) {
        report.add("config-parse", path, Diag::kNoLocation,
                   "cannot open file");
        return;
    }
    lintConfigStream(in, path, report);
}

} // namespace memento
