#include "sa/trace_check.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "sim/error.h"
#include "sim/logging.h"

namespace memento {
namespace {

/** Shadow record of one live object. */
struct ShadowObject
{
    std::uint64_t size = 0;
    std::uint64_t allocOp = 0;
};

/**
 * The abstract interpreter. State mirrors exactly what the dynamic
 * executor tracks (FunctionExecutor::objects_) plus the free history
 * and per-class occupancy the sanitizer-style rules need.
 */
class ShadowHeap
{
  public:
    ShadowHeap(const TraceCheckPolicy &policy,
               const std::string &subject, DiagReport &report)
        : policy_(policy), subject_(subject), report_(report),
          classLive_(policy.numSizeClasses, 0),
          classReported_(policy.numSizeClasses, false)
    {
    }

    void
    step(const TraceOp &op, std::uint64_t i)
    {
        switch (op.kind) {
          case OpKind::Malloc: onMalloc(op, i); break;
          case OpKind::Free: onFree(op, i); break;
          case OpKind::Load:
          case OpKind::Store: onAccess(op, i); break;
          case OpKind::FunctionEnd: onFunctionEnd(i); break;
          case OpKind::Compute:
          case OpKind::StaticLoad:
          case OpKind::StaticStore:
            break; // No heap effect.
        }
    }

    void
    finish(const Trace &trace)
    {
        if (trace.empty()) {
            diag("trace-truncated", Diag::kNoLocation, "empty op stream");
            return;
        }
        if (trace.back().kind == OpKind::FunctionEnd)
            return;
        diag("trace-truncated", trace.size(),
             detail::formatMsg("op stream ends after ", trace.size(),
                               " op(s) without a FunctionEnd terminator"));
        if (!live_.empty()) {
            // Earliest-allocated leaked object, for a stable exemplar.
            const auto first = std::min_element(
                live_.begin(), live_.end(),
                [](const auto &a, const auto &b) {
                    return a.second.allocOp < b.second.allocOp;
                });
            diag("trace-leak", first->second.allocOp,
                 detail::formatMsg(
                     live_.size(),
                     " object(s) still live at end of stream (first: "
                     "object ",
                     first->first, " allocated at op ",
                     first->second.allocOp, ", never freed)"));
        }
    }

  private:
    void
    diag(std::string_view rule, std::uint64_t location,
         std::string message)
    {
        report_.add(rule, subject_, location, std::move(message));
    }

    /** Class index for a small size under the policy's step. */
    unsigned
    classOf(std::uint64_t size) const
    {
        const std::uint64_t step =
            std::max<std::uint64_t>(1, policy_.maxSmallSize /
                                           policy_.numSizeClasses);
        const std::uint64_t cls = (size + step - 1) / step;
        return static_cast<unsigned>(
            std::min<std::uint64_t>(cls, policy_.numSizeClasses) - 1);
    }

    bool
    isSmall(std::uint64_t size) const
    {
        return size >= 1 && size <= policy_.maxSmallSize;
    }

    void
    onMalloc(const TraceOp &op, std::uint64_t i)
    {
        if (op.value == 0 || op.value > policy_.perClassRegionBytes) {
            diag("trace-size-class", i,
                 detail::formatMsg(
                     "malloc of ", op.value, " byte(s) for object ",
                     op.objId,
                     op.value == 0
                         ? " has no size class"
                         : " exceeds the per-class region and cannot "
                           "be routed"));
        }
        const auto it = live_.find(op.objId);
        if (it != live_.end()) {
            diag("trace-duplicate-id", i,
                 detail::formatMsg("malloc reuses object id ", op.objId,
                                   " which is still live (allocated at "
                                   "op ",
                                   it->second.allocOp, ")"));
            return; // Keep the original binding, as the executor would.
        }
        freed_.erase(op.objId); // Reusing a freed handle is legal.
        live_.emplace(op.objId, ShadowObject{op.value, i});
        if (isSmall(op.value)) {
            const unsigned cls = classOf(op.value);
            if (++classLive_[cls] > policy_.classCapacity(cls) &&
                !classReported_[cls]) {
                classReported_[cls] = true;
                diag("trace-arena-oversubscription", i,
                     detail::formatMsg(
                         "size class ", cls, " holds ", classLive_[cls],
                         " live object(s), beyond its region capacity "
                         "of ",
                         policy_.classCapacity(cls), " (",
                         policy_.objectsPerArena, " per arena)"));
            }
        }
    }

    void
    onFree(const TraceOp &op, std::uint64_t i)
    {
        const auto it = live_.find(op.objId);
        if (it != live_.end()) {
            if (isSmall(it->second.size))
                --classLive_[classOf(it->second.size)];
            freed_[op.objId] = i;
            live_.erase(it);
            return;
        }
        const auto freed = freed_.find(op.objId);
        if (freed != freed_.end()) {
            diag("trace-double-free", i,
                 detail::formatMsg("double free of object ", op.objId,
                                   " (freed at op ", freed->second,
                                   ")"));
        } else {
            diag("trace-free-unallocated", i,
                 detail::formatMsg("free of object ", op.objId,
                                   " which was never allocated"));
        }
    }

    void
    onAccess(const TraceOp &op, std::uint64_t i)
    {
        const char *what = op.kind == OpKind::Store ? "store" : "load";
        const auto it = live_.find(op.objId);
        if (it != live_.end()) {
            if (op.offset >= it->second.size) {
                diag("trace-out-of-bounds", i,
                     detail::formatMsg(
                         what, " at offset ", op.offset, " past the end "
                         "of object ", op.objId, " (", it->second.size,
                         " byte(s), allocated at op ",
                         it->second.allocOp, ")"));
            }
            return;
        }
        const auto freed = freed_.find(op.objId);
        if (freed != freed_.end()) {
            diag("trace-use-after-free", i,
                 detail::formatMsg(what, " to object ", op.objId,
                                   " after free at op ", freed->second));
        } else {
            diag("trace-use-unallocated", i,
                 detail::formatMsg(what, " to object ", op.objId,
                                   " which was never allocated"));
        }
    }

    void
    onFunctionEnd(std::uint64_t i)
    {
        sawEnd_ = true;
        lastEnd_ = i;
        // FunctionEnd batch-frees everything live, exactly like the
        // executor's functionExit(): the next frame starts clean and a
        // stale handle from the previous frame is "never allocated".
        live_.clear();
        freed_.clear();
        std::fill(classLive_.begin(), classLive_.end(), 0);
        std::fill(classReported_.begin(), classReported_.end(), false);
    }

  public:
    bool sawEnd_ = false;
    std::uint64_t lastEnd_ = 0;

  private:
    const TraceCheckPolicy &policy_;
    const std::string &subject_;
    DiagReport &report_;
    std::unordered_map<std::uint64_t, ShadowObject> live_;
    std::unordered_map<std::uint64_t, std::uint64_t> freed_;
    std::vector<std::uint64_t> classLive_;
    std::vector<bool> classReported_;
};

} // namespace

TraceCheckPolicy
TraceCheckPolicy::fromConfig(const MachineConfig &cfg)
{
    TraceCheckPolicy policy;
    policy.maxSmallSize = cfg.memento.maxSmallSize;
    policy.numSizeClasses = cfg.memento.numSizeClasses;
    policy.objectsPerArena = cfg.memento.objectsPerArena;
    policy.perClassRegionBytes = cfg.layout.perClassRegionBytes;
    return policy;
}

std::uint64_t
TraceCheckPolicy::classCapacity(unsigned cls) const
{
    const std::uint64_t step =
        std::max<std::uint64_t>(1, maxSmallSize / numSizeClasses);
    const std::uint64_t slot = (static_cast<std::uint64_t>(cls) + 1) * step;
    const std::uint64_t arena_bytes =
        std::max<std::uint64_t>(1, slot * objectsPerArena);
    const std::uint64_t arenas =
        std::max<std::uint64_t>(1, perClassRegionBytes / arena_bytes);
    return arenas * objectsPerArena;
}

void
checkTrace(const Trace &trace, const TraceCheckPolicy &policy,
           const std::string &subject, DiagReport &report)
{
    ShadowHeap heap(policy, subject, report);
    bool boundary_reported = false;
    for (std::uint64_t i = 0; i < trace.size(); ++i) {
        if (heap.sawEnd_ && !boundary_reported) {
            boundary_reported = true;
            report.add("trace-function-boundary", subject, heap.lastEnd_,
                       detail::formatMsg(
                           "FunctionEnd at op ", heap.lastEnd_,
                           " is followed by ", trace.size() - i,
                           " more op(s); function boundaries must "
                           "terminate the stream"));
        }
        heap.step(trace[i], i);
    }
    heap.finish(trace);
}

void
checkTraceStream(std::istream &is, const TraceCheckPolicy &policy,
                 const std::string &subject, DiagReport &report)
{
    Trace trace;
    try {
        trace = readTraceOps(is);
    } catch (const SimError &e) {
        report.add("trace-parse", subject, e.opIndex(), e.what());
        return;
    }
    checkTrace(trace, policy, subject, report);
}

Trace
applyTraceFaultPlan(const Trace &trace, const FaultPlan &plan,
                    const std::string &workload_id)
{
    Trace out = trace;
    if (!plan.appliesTo(workload_id))
        return out;
    // Same order and 1-based indexing as FunctionExecutor::run: the
    // truncation shortens the stream first, and a corruption is only
    // visible when it lands inside the surviving prefix.
    if (plan.traceTruncateAt != 0 && plan.traceTruncateAt < out.size())
        out.resize(plan.traceTruncateAt);
    if (plan.traceCorruptAt != 0 && plan.traceCorruptAt <= out.size()) {
        TraceOp &op = out[plan.traceCorruptAt - 1];
        op.kind = OpKind::Free;
        op.objId |= 1ull << 62;
    }
    return out;
}

} // namespace memento
