/**
 * @file
 * Static config linter: validates `key = value` files (the
 * sim/config_file.h format) against the declarative schema in
 * sim/config_schema.h without constructing a machine.
 *
 * Per-line rules: config-parse (not an assignment), config-unknown-key
 * (with an edit-distance "did you mean" suggestion), config-bad-value,
 * config-out-of-range, config-duplicate-key (explicit
 * last-value-wins). Cross-key rules evaluated on the effective
 * configuration after the whole file is read: config-region-overlap
 * (MRS/MRE inversion or overlap with the heap/image layout),
 * config-bypass-no-memento (memento.* hardware keys set while
 * memento.enabled stays off), and config-check-conflict
 * (check.interval beyond the check.max_ops watchdog budget).
 *
 * The linter never throws and reports every finding with its 1-based
 * line number; lint order is line order, then cross-key order, so
 * output is deterministic.
 */

#ifndef MEMENTO_SA_CONFIG_LINT_H
#define MEMENTO_SA_CONFIG_LINT_H

#include <iosfwd>
#include <string>

#include "sa/diag.h"

namespace memento {

/** Lint @p is, tagging findings with @p subject (the file name). */
void lintConfigStream(std::istream &is, const std::string &subject,
                      DiagReport &report);

/**
 * lintConfigStream() over the file at @p path; an unreadable file is a
 * config-parse diagnostic, not an exception.
 */
void lintConfigFile(const std::string &path, DiagReport &report);

} // namespace memento

#endif // MEMENTO_SA_CONFIG_LINT_H
