/**
 * @file
 * Deterministic machine-state digest for paired-run verification.
 *
 * Hashes every piece of architectural and accounting state a run can
 * influence — statistics, the cycle ledger, page-table mappings, VMAs,
 * Memento arenas and lists, cache contents — into one 64-bit FNV-1a
 * value. Two runs of the same workload under the same configuration
 * must produce identical digests; a mismatch means hidden
 * nondeterminism (iteration over pointer-keyed containers, uninitialised
 * state, host-environment leakage) crept into the model.
 *
 * Only simulated state is hashed, never host pointers or addresses of
 * C++ objects, and unordered containers are visited in sorted order.
 */

#ifndef MEMENTO_VAL_DIGEST_H
#define MEMENTO_VAL_DIGEST_H

#include <cstdint>
#include <string>
#include <string_view>

namespace memento {

class Machine;

/** Incremental FNV-1a 64-bit hasher. */
class DigestBuilder
{
  public:
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;

    void
    addByte(std::uint8_t b)
    {
        hash_ = (hash_ ^ b) * kPrime;
    }

    void
    add(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            addByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    add(std::string_view s)
    {
        add(static_cast<std::uint64_t>(s.size()));
        for (char c : s)
            addByte(static_cast<std::uint8_t>(c));
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = kOffsetBasis;
};

/** Digest of one machine's complete simulated state. */
std::uint64_t digestMachine(Machine &machine);

/** 16-hex-digit rendering for reports. */
std::string digestToHex(std::uint64_t digest);

} // namespace memento

#endif // MEMENTO_VAL_DIGEST_H
