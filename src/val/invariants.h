/**
 * @file
 * Cross-module invariant checking.
 *
 * The simulator's modules keep redundant views of the same state — the
 * OS page table vs. VMA list vs. buddy allocator, the Memento arena
 * bitmaps vs. the HOT vs. the avail/full lists, the cache levels vs.
 * the inclusion property, the cycle ledger vs. its category split. The
 * checker walks all of them and reports every disagreement, so that a
 * bug (or an injected fault) is caught at the op where state diverged
 * instead of as a silently wrong result table.
 *
 * Checks are structural and read-only: they never charge cycles and
 * never mutate machine state, so running them cannot perturb a result.
 */

#ifndef MEMENTO_VAL_INVARIANTS_H
#define MEMENTO_VAL_INVARIANTS_H

#include <cstddef>
#include <string>
#include <vector>

namespace memento {

class Machine;

/** Outcome of one whole-machine sweep. */
struct InvariantReport
{
    std::vector<std::string> violations;

    bool clean() const { return violations.empty(); }

    /** Violations joined for an error message (capped at @p max_items). */
    std::string summary(std::size_t max_items = 8) const;
};

/** Whole-machine consistency sweep. */
class InvariantChecker
{
  public:
    /** Run every check; never throws. */
    static InvariantReport check(Machine &machine);

    /**
     * Run every check and throw SimError(ErrorCategory::Corruption)
     * describing the violations when any check fails. @p when names
     * the call site for the message ("op 1234", "end of run").
     */
    static void enforce(Machine &machine, const std::string &when);

  private:
    static void checkLedger(Machine &m, std::vector<std::string> &v);
    static void checkBuddy(Machine &m, std::vector<std::string> &v);
    static void checkCaches(Machine &m, std::vector<std::string> &v);
    static void checkVirtualMemory(Machine &m, std::vector<std::string> &v);
    static void checkMemento(Machine &m, std::vector<std::string> &v);
};

} // namespace memento

#endif // MEMENTO_VAL_INVARIANTS_H
