#include "val/digest.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "machine/machine.h"

namespace memento {

namespace {

void
addCache(DigestBuilder &d, const Cache &cache)
{
    d.add(cache.name());
    // forEachLine visits lines_ in index order: deterministic.
    cache.forEachLine([&](Addr line, bool dirty) {
        d.add(line);
        d.add(static_cast<std::uint64_t>(dirty));
    });
}

void
addPageTable(DigestBuilder &d, const PageTable &table)
{
    d.add(table.mappedPages());
    d.add(table.nodePages());
    table.forEachMapping([&](Addr vpage, Addr ppage) {
        d.add(vpage);
        d.add(ppage);
    });
}

void
addSpace(DigestBuilder &d, const MementoSpace &space)
{
    for (Addr bump : space.bump)
        d.add(bump);

    // arenas is unordered; visit headers by ascending base VA.
    std::vector<Addr> bases;
    bases.reserve(space.arenas.size());
    for (const auto &[va, state] :
         space.arenas) // lint-src: allow(src-unordered-iteration)
        bases.push_back(va);
    std::sort(bases.begin(), bases.end());
    for (Addr va : bases) {
        const ArenaState &state = space.arenas.at(va);
        d.add(state.va);
        d.add(state.headerPa);
        d.add(state.szclass);
        d.add(state.ownerThread);
        d.add(state.allocated);
        d.add(state.bypassCounter);
        for (unsigned word = 0; word < ArenaState::kMaxObjects; word += 64) {
            std::uint64_t bits = 0;
            for (unsigned bit = 0; bit < 64; ++bit) {
                if (state.bitmap.test(word + bit))
                    bits |= 1ull << bit;
            }
            d.add(bits);
        }
    }

    for (const auto &list : space.availList) {
        d.add(static_cast<std::uint64_t>(list.size()));
        for (Addr va : list)
            d.add(va);
    }
    for (const auto &list : space.fullList) {
        d.add(static_cast<std::uint64_t>(list.size()));
        for (Addr va : list)
            d.add(va);
    }
    addPageTable(d, space.mpt);
}

} // namespace

std::uint64_t
digestMachine(Machine &machine)
{
    DigestBuilder d;

    // Statistics (std::map snapshot: sorted, deterministic).
    for (const auto &[name, value] : machine.stats().snapshot()) {
        d.add(name);
        d.add(value);
    }

    // Cycle ledger.
    const CycleLedger &ledger = machine.cycleLedger();
    d.add(ledger.total());
    for (std::size_t i = 0; i < kNumCycleCategories; ++i)
        d.add(ledger.category(static_cast<CycleCategory>(i)));
    d.add(machine.instructions());

    // Caches.
    addCache(d, machine.hierarchy().l1d());
    addCache(d, machine.hierarchy().l1i());
    addCache(d, machine.hierarchy().l2());
    addCache(d, machine.hierarchy().llc());

    // Per-process address spaces and Memento state.
    d.add(machine.processCount());
    for (unsigned p = 0; p < machine.processCount(); ++p) {
        Process &proc = machine.processAt(p);
        d.add(proc.name());
        d.add(static_cast<std::uint64_t>(proc.pid()));

        const VirtualMemory &vm = proc.vm();
        for (const auto &[base, end] : vm.vmaRanges()) {
            d.add(base);
            d.add(end);
        }
        d.add(vm.residentUserPages());
        d.add(vm.residentKernelPages());
        addPageTable(d, vm.pageTable());

        const MementoRegs &regs = proc.mementoRegs();
        d.add(regs.mrs);
        d.add(regs.mre);
        d.add(regs.mptr);

        if (const MementoSpace *space = machine.mementoSpaceAt(p))
            addSpace(d, *space);
    }

    return d.value();
}

std::string
digestToHex(std::uint64_t digest)
{
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << digest;
    return os.str();
}

} // namespace memento
