#include "val/invariants.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "machine/machine.h"
#include "sim/error.h"

namespace memento {

std::string
InvariantReport::summary(std::size_t max_items) const
{
    std::ostringstream os;
    const std::size_t shown = std::min(max_items, violations.size());
    for (std::size_t i = 0; i < shown; ++i) {
        if (i)
            os << "; ";
        os << violations[i];
    }
    if (violations.size() > shown)
        os << "; ... (" << violations.size() - shown << " more)";
    return os.str();
}

void
InvariantChecker::checkLedger(Machine &m, std::vector<std::string> &v)
{
    const CycleLedger &ledger = m.cycleLedger();
    Cycles by_category = 0;
    for (std::size_t i = 0; i < kNumCycleCategories; ++i)
        by_category += ledger.category(static_cast<CycleCategory>(i));
    if (by_category != ledger.total()) {
        std::ostringstream os;
        os << "ledger: category sum (" << by_category
           << ") != total cycles (" << ledger.total() << ")";
        v.push_back(os.str());
    }
}

void
InvariantChecker::checkBuddy(Machine &m, std::vector<std::string> &v)
{
    m.buddy().checkIntegrity(v);
}

void
InvariantChecker::checkCaches(Machine &m, std::vector<std::string> &v)
{
    CacheHierarchy &hier = m.hierarchy();
    hier.l1d().checkIntegrity(v);
    hier.l1i().checkIntegrity(v);
    hier.l2().checkIntegrity(v);
    hier.llc().checkIntegrity(v);

    // The LLC is inclusive of every inner level (back-invalidation on
    // LLC evictions); an inner-only line would lose coherence events.
    const Cache &llc = hier.llc();
    auto require_inclusion = [&](const Cache &inner) {
        inner.forEachLine([&](Addr line, bool dirty) {
            (void)dirty;
            if (!llc.contains(line)) {
                std::ostringstream os;
                os << inner.name() << ": line 0x" << std::hex << line
                   << " resident but absent from the inclusive LLC";
                v.push_back(os.str());
            }
        });
    };
    require_inclusion(hier.l1d());
    require_inclusion(hier.l1i());
    require_inclusion(hier.l2());
}

void
InvariantChecker::checkVirtualMemory(Machine &m, std::vector<std::string> &v)
{
    for (unsigned p = 0; p < m.processCount(); ++p) {
        Process &proc = m.processAt(p);
        const VirtualMemory &vm = proc.vm();
        const auto vmas = vm.vmaRanges();

        auto in_vma = [&](Addr va) {
            // vmas is sorted by base; find the last range starting <= va.
            auto it = std::upper_bound(
                vmas.begin(), vmas.end(), va,
                [](Addr a, const std::pair<Addr, Addr> &r) {
                    return a < r.first;
                });
            if (it == vmas.begin())
                return false;
            --it;
            return va >= it->first && va < it->second;
        };

        std::uint64_t mapped = 0;
        vm.pageTable().forEachMapping([&](Addr vpage, Addr ppage) {
            ++mapped;
            if (!in_vma(vpage)) {
                std::ostringstream os;
                os << proc.name() << ": page 0x" << std::hex << vpage
                   << " mapped outside every VMA";
                v.push_back(os.str());
            }
            if (!m.buddy().ownsLivePage(ppage)) {
                std::ostringstream os;
                os << proc.name() << ": page 0x" << std::hex << vpage
                   << " maps frame 0x" << ppage
                   << " the buddy allocator does not hold live";
                v.push_back(os.str());
            }
        });

        // Resident accounting: 4 KiB leaves plus huge-page mappings
        // must equal the user-resident count the pricing model uses.
        const std::uint64_t huge_pages =
            vm.hugeMappingCount() << (kHugePageShift - kPageShift);
        if (mapped + huge_pages != vm.residentUserPages()) {
            std::ostringstream os;
            os << proc.name() << ": mapped pages (" << mapped << " + "
               << huge_pages << " huge) != resident user pages ("
               << vm.residentUserPages() << ")";
            v.push_back(os.str());
        }
        if (vm.pageTable().nodePages() != vm.residentKernelPages()) {
            std::ostringstream os;
            os << proc.name() << ": page-table nodes ("
               << vm.pageTable().nodePages()
               << ") != resident kernel pages ("
               << vm.residentKernelPages() << ")";
            v.push_back(os.str());
        }
    }
}

void
InvariantChecker::checkMemento(Machine &m, std::vector<std::string> &v)
{
    HwObjectAllocator *hw_obj = m.hwObjectAllocator();
    if (!hw_obj)
        return;
    const ArenaGeometry &geo = hw_obj->geometry();
    const unsigned capacity = geo.objectsPerArena();
    std::uint64_t memento_pages = 0;

    for (unsigned p = 0; p < m.processCount(); ++p) {
        MementoSpace *space = m.mementoSpaceAt(p);
        if (!space)
            continue;
        const std::string &who = m.processAt(p).name();

        for (unsigned cls = 0; cls < geo.numClasses(); ++cls) {
            const Addr base = geo.classBase(cls);
            const Addr limit = geo.classBase(cls + 1);
            const Addr bump = space->bump[cls];
            if (bump < base || bump > limit) {
                std::ostringstream os;
                os << who << ": class " << cls << " bump pointer 0x"
                   << std::hex << bump << " outside [0x" << base
                   << ", 0x" << limit << "]";
                v.push_back(os.str());
            } else if ((bump - base) % geo.arenaSpan(cls) != 0) {
                std::ostringstream os;
                os << who << ": class " << cls << " bump pointer 0x"
                   << std::hex << bump << " not arena-aligned";
                v.push_back(os.str());
            }
        }

        // Validate arenas in ascending VA order so a report with
        // several violations lists them deterministically.
        std::vector<Addr> arena_vas;
        arena_vas.reserve(space->arenas.size());
        for (const auto &[va, state] :
             space->arenas) // lint-src: allow(src-unordered-iteration)
            arena_vas.push_back(va);
        std::sort(arena_vas.begin(), arena_vas.end());
        for (Addr va : arena_vas) {
            const ArenaState &state = space->arenas.at(va);
            std::ostringstream who_arena;
            who_arena << who << ": arena 0x" << std::hex << va;
            if (state.va != va)
                v.push_back(who_arena.str() + ": header VA field mismatch");
            if (!geo.inRegion(va) || geo.arenaBaseOf(va) != va ||
                geo.classOf(va) != state.szclass) {
                v.push_back(who_arena.str() +
                            ": base/class disagree with region geometry");
                continue;
            }
            if (state.allocated != state.bitmap.count()) {
                std::ostringstream os;
                os << who_arena.str() << ": allocated count ("
                   << std::dec << state.allocated
                   << ") != bitmap population (" << state.bitmap.count()
                   << ")";
                v.push_back(os.str());
            }
            if (state.allocated > capacity)
                v.push_back(who_arena.str() +
                            ": allocated exceeds arena capacity");
            if (state.bypassCounter > geo.arenaSpan(state.szclass) / 64)
                v.push_back(who_arena.str() +
                            ": bypass counter past the arena span");
        }

        // List discipline: avail holds non-full arenas, full holds full
        // ones, and no arena sits on two lists (HOT-resident arenas sit
        // on none). Each listed arena must exist in the header map.
        std::unordered_set<Addr> listed;
        auto check_list = [&](unsigned cls, const std::deque<Addr> &list,
                              bool want_full, const char *list_name) {
            for (Addr va : list) {
                std::ostringstream os;
                os << who << ": " << list_name << "[" << cls
                   << "] arena 0x" << std::hex << va;
                if (!listed.insert(va).second) {
                    v.push_back(os.str() + " linked on two lists");
                    continue;
                }
                auto it = space->arenas.find(va);
                if (it == space->arenas.end()) {
                    v.push_back(os.str() + " has no header");
                    continue;
                }
                if (it->second.szclass != cls)
                    v.push_back(os.str() + " linked under the wrong class");
                if (it->second.full(capacity) != want_full)
                    v.push_back(os.str() + (want_full
                                    ? " on the full list but not full"
                                    : " on the avail list but full"));
            }
        };
        for (unsigned cls = 0; cls < geo.numClasses(); ++cls) {
            check_list(cls, space->availList[cls], false, "avail");
            check_list(cls, space->fullList[cls], true, "full");
        }

        // Memento page table: arena pages must be in-region and backed
        // by frames the buddy allocator granted the pool.
        space->mpt.forEachMapping([&](Addr vpage, Addr ppage) {
            if (!geo.inRegion(vpage)) {
                std::ostringstream os;
                os << who << ": MPT maps 0x" << std::hex << vpage
                   << " outside the Memento region";
                v.push_back(os.str());
            }
            if (!m.buddy().ownsLivePage(ppage)) {
                std::ostringstream os;
                os << who << ": MPT frame 0x" << std::hex << ppage
                   << " not live in the buddy allocator";
                v.push_back(os.str());
            }
        });
        memento_pages += space->mpt.mappedPages();
    }

    // The HOT caches the current process's arenas only (flushed on
    // context switch): every valid entry must name a live arena of its
    // class, and a HOT-resident arena sits on neither list.
    Hot *hot = m.hot();
    MementoSpace *current = m.mementoSpace();
    if (hot && current) {
        for (unsigned cls = 0; cls < geo.numClasses(); ++cls) {
            const HotEntry &e = hot->entry(cls);
            if (!e.valid)
                continue;
            auto it = current->arenas.find(e.arenaVa);
            std::ostringstream os;
            os << "hot[" << cls << "]: arena 0x" << std::hex << e.arenaVa;
            if (it == current->arenas.end()) {
                v.push_back(os.str() + " not present in the header map");
                continue;
            }
            if (it->second.szclass != cls)
                v.push_back(os.str() + " cached under the wrong class");
            if (it->second.headerPa != e.arenaPa)
                v.push_back(os.str() + " cached with a stale header PA");
            auto on = [&](const std::deque<Addr> &list) {
                return std::find(list.begin(), list.end(), e.arenaVa) !=
                       list.end();
            };
            if (on(current->availList[cls]) || on(current->fullList[cls]))
                v.push_back(os.str() + " HOT-resident yet linked on a list");
        }
    }

    // Resident-arena accounting at the page allocator.
    if (HwPageAllocator *hw_page = m.hwPageAllocator()) {
        if (memento_pages != hw_page->residentArenaPages()) {
            std::ostringstream os;
            os << "hwpage: MPT-mapped pages (" << memento_pages
               << ") != resident arena pages ("
               << hw_page->residentArenaPages() << ")";
            v.push_back(os.str());
        }
    }
}

InvariantReport
InvariantChecker::check(Machine &machine)
{
    InvariantReport report;
    checkLedger(machine, report.violations);
    checkBuddy(machine, report.violations);
    checkCaches(machine, report.violations);
    checkVirtualMemory(machine, report.violations);
    checkMemento(machine, report.violations);
    return report;
}

void
InvariantChecker::enforce(Machine &machine, const std::string &when)
{
    InvariantReport report = check(machine);
    sim_error_if(!report.clean(), ErrorCategory::Corruption,
                 "invariant check failed (", when, "): ",
                 report.summary());
}

} // namespace memento
