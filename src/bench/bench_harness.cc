#include "bench/bench_harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>

#include "machine/function_executor.h"
#include "machine/machine.h"
#include "machine/sweep.h"
#include "sim/json.h"
#include "val/digest.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

#ifndef MEMENTO_BUILD_FLAGS
#define MEMENTO_BUILD_FLAGS "unknown"
#endif

namespace memento {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Commit being benchmarked, or "unknown" outside a git checkout. */
std::string
gitSha()
{
    FILE *pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
    if (!pipe)
        return "unknown";
    char buf[128];
    std::string out;
    if (std::fgets(buf, sizeof buf, pipe))
        out = buf;
    ::pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    if (out.size() < 7 ||
        out.find_first_not_of("0123456789abcdef") != std::string::npos)
        return "unknown";
    return out;
}

/** q-th percentile (nearest-rank on the sorted samples). */
double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(q * (samples.size() - 1));
    return samples[idx];
}

WorkloadBench
benchWorkload(const WorkloadSpec &spec, const Trace &trace,
              const BenchOptions &opts)
{
    WorkloadBench wb;
    wb.id = spec.id;
    wb.traceOps = trace.size();

    // Timed repetitions: fresh machine each time, clock only around
    // the replay itself (machine construction and process set-up are
    // the sweep's fixed costs, not the per-op path under test).
    std::vector<double> opsPerSec;
    for (unsigned r = 0; r < opts.repeats; ++r) {
        Machine machine(opts.cfg);
        machine.createProcess(spec);
        FunctionExecutor executor(machine);
        const Cycles before = machine.cycleLedger().total();
        const auto start = Clock::now();
        executor.run(spec, trace);
        const double elapsed = secondsSince(start);
        if (elapsed > 0.0)
            opsPerSec.push_back(static_cast<double>(trace.size()) /
                                elapsed);
        if (r == 0) {
            wb.cycles = machine.cycleLedger().total() - before;
            wb.digest = digestMachine(machine);
        }
    }
    std::sort(opsPerSec.begin(), opsPerSec.end());
    if (!opsPerSec.empty())
        wb.opsPerSec = opsPerSec[opsPerSec.size() / 2];

    // Chunked pass: per-op latency samples at ~4 Ki-op granularity
    // (fine enough to expose slow phases, coarse enough that the clock
    // reads do not dominate what they measure).
    constexpr std::size_t kChunkOps = 4096;
    std::vector<double> perOpNs;
    Machine machine(opts.cfg);
    machine.createProcess(spec);
    FunctionExecutor executor(machine);
    for (std::size_t from = 0; from < trace.size(); from += kChunkOps) {
        const std::size_t to = std::min(from + kChunkOps, trace.size());
        const auto start = Clock::now();
        executor.runRange(spec, trace, from, to);
        const double elapsed = secondsSince(start);
        perOpNs.push_back(elapsed * 1e9 /
                          static_cast<double>(to - from));
    }
    wb.p50OpNs = percentile(perOpNs, 0.50);
    wb.p99OpNs = percentile(perOpNs, 0.99);
    return wb;
}

} // namespace

BenchReport
runBench(const BenchOptions &opts)
{
    std::vector<WorkloadSpec> specs = allWorkloads();
    if (opts.smoke)
        specs.resize(std::min<std::size_t>(specs.size(), 3));

    BenchReport report;
    report.repeats = opts.repeats;
    report.smoke = opts.smoke;

    // Synthesize every trace up front (untimed): the bench measures
    // replay, and this is also what sweeps do via their TraceCache.
    std::vector<Trace> traces;
    traces.reserve(specs.size());
    for (const WorkloadSpec &spec : specs)
        traces.push_back(TraceGenerator(spec).generate());

    // Phase 1: per-workload measurements plus the serial sweep time.
    const auto serial_start = Clock::now();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        WorkloadBench wb = benchWorkload(specs[i], traces[i], opts);
        report.totalOps += wb.traceOps;
        report.totalCycles += wb.cycles;
        report.workloads.push_back(std::move(wb));
    }
    // One replay per workload is the sweep-comparable serial time; the
    // measurement loop above ran repeats + 1 replays per workload.
    report.jobs1WallSec =
        secondsSince(serial_start) /
        static_cast<double>(opts.repeats + 1);
    if (report.jobs1WallSec > 0.0)
        report.aggregateOpsPerSec =
            static_cast<double>(report.totalOps) / report.jobs1WallSec;

    // Phase 2: the same sweep through the work-stealing engine.
    std::vector<SweepTask> tasks;
    tasks.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        tasks.push_back({specs[i], opts.cfg, RunOptions{},
                         std::make_shared<const Trace>(traces[i])});
    SweepOptions sweep_opts;
    sweep_opts.jobs = opts.jobs;
    SweepEngine engine(sweep_opts);
    report.jobsN = engine.effectiveJobs();
    const auto par_start = Clock::now();
    engine.run(tasks);
    report.jobsNWallSec = secondsSince(par_start);
    return report;
}

void
writeBenchJson(std::ostream &os, const BenchReport &report)
{
    JsonWriter w(os);
    w.beginObject();
    writeSchemaHeader(w, "bench");
    w.member("git_sha", gitSha());
    w.member("compiler", __VERSION__);
    w.member("build_flags", MEMENTO_BUILD_FLAGS);
    w.member("smoke", report.smoke);
    w.member("repeats", report.repeats);
    w.member("jobs", report.jobsN);
    w.key("workloads").beginArray();
    for (const WorkloadBench &wb : report.workloads) {
        w.beginObject();
        w.member("id", wb.id);
        w.member("trace_ops", wb.traceOps);
        w.member("cycles", wb.cycles);
        w.member("digest", digestToHex(wb.digest));
        w.member("ops_per_sec", wb.opsPerSec);
        w.member("p50_op_ns", wb.p50OpNs);
        w.member("p99_op_ns", wb.p99OpNs);
        w.endObject();
    }
    w.endArray();
    w.key("totals").beginObject();
    w.member("workloads",
             static_cast<std::uint64_t>(report.workloads.size()));
    w.member("trace_ops", report.totalOps);
    w.member("cycles", report.totalCycles);
    w.member("jobs1_wall_sec", report.jobs1WallSec);
    w.member("jobsN_wall_sec", report.jobsNWallSec);
    w.member("aggregate_ops_per_sec", report.aggregateOpsPerSec);
    w.endObject();
    w.endObject();
    w.complete();
}

void
printBenchText(std::ostream &os, const BenchReport &report)
{
    os << "workload                  ops        ops/s    p50ns   p99ns\n";
    for (const WorkloadBench &wb : report.workloads) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "%-22s %8llu %12.0f %8.1f %7.1f\n", wb.id.c_str(),
                      static_cast<unsigned long long>(wb.traceOps),
                      wb.opsPerSec, wb.p50OpNs, wb.p99OpNs);
        os << line;
    }
    char tail[200];
    std::snprintf(tail, sizeof tail,
                  "sweep: %.3fs at 1 job, %.3fs at %u job(s); "
                  "%.0f ops/s aggregate\n",
                  report.jobs1WallSec, report.jobsNWallSec, report.jobsN,
                  report.aggregateOpsPerSec);
    os << tail;
}

} // namespace memento
