#include "bench/bench_harness.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "machine/function_executor.h"
#include "machine/machine.h"
#include "machine/result_store.h"
#include "machine/sweep.h"
#include "sim/config_canon.h"
#include "sim/json.h"
#include "val/digest.h"
#include "wl/trace_generator.h"
#include "wl/workloads.h"

#ifndef MEMENTO_BUILD_FLAGS
#define MEMENTO_BUILD_FLAGS "unknown"
#endif

namespace memento {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** q-th percentile (nearest-rank on the sorted samples). */
double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(q * (samples.size() - 1));
    return samples[idx];
}

WorkloadBench
benchWorkload(const WorkloadSpec &spec, const Trace &trace,
              const BenchOptions &opts)
{
    WorkloadBench wb;
    wb.id = spec.id;
    wb.traceOps = trace.size();

    // Timed repetitions: fresh machine each time, clock only around
    // the replay itself (machine construction and process set-up are
    // the sweep's fixed costs, not the per-op path under test).
    std::vector<double> opsPerSec;
    for (unsigned r = 0; r < opts.repeats; ++r) {
        Machine machine(opts.cfg);
        machine.createProcess(spec);
        FunctionExecutor executor(machine);
        const Cycles before = machine.cycleLedger().total();
        const auto start = Clock::now();
        executor.run(spec, trace);
        const double elapsed = secondsSince(start);
        if (elapsed > 0.0)
            opsPerSec.push_back(static_cast<double>(trace.size()) /
                                elapsed);
        if (r == 0) {
            wb.cycles = machine.cycleLedger().total() - before;
            wb.digest = digestMachine(machine);
        }
    }
    std::sort(opsPerSec.begin(), opsPerSec.end());
    if (!opsPerSec.empty())
        wb.opsPerSec = opsPerSec[opsPerSec.size() / 2];

    // Chunked pass: per-op latency samples at ~4 Ki-op granularity
    // (fine enough to expose slow phases, coarse enough that the clock
    // reads do not dominate what they measure).
    constexpr std::size_t kChunkOps = 4096;
    std::vector<double> perOpNs;
    Machine machine(opts.cfg);
    machine.createProcess(spec);
    FunctionExecutor executor(machine);
    for (std::size_t from = 0; from < trace.size(); from += kChunkOps) {
        const std::size_t to = std::min(from + kChunkOps, trace.size());
        const auto start = Clock::now();
        executor.runRange(spec, trace, from, to);
        const double elapsed = secondsSince(start);
        perOpNs.push_back(elapsed * 1e9 /
                          static_cast<double>(to - from));
    }
    wb.p50OpNs = percentile(perOpNs, 0.50);
    wb.p99OpNs = percentile(perOpNs, 0.99);
    return wb;
}

// ---- Bench result-store cells ----------------------------------------
//
// Wall-clock measurements travel as exact IEEE bit patterns: a cached
// cell must reproduce the original measurement bit-for-bit, so that a
// full-cache-hit `bench` re-run emits a byte-identical report.

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
fromBits(std::uint64_t b)
{
    return std::bit_cast<double>(b);
}

bool
cellU64(const JsonValue &obj, std::string_view name, std::uint64_t &out)
{
    const JsonValue *v = obj.find(name);
    if (v == nullptr || !v->isNumber() || !v->isInteger)
        return false;
    out = v->u64;
    return true;
}

CellKey
workloadCellKey(const ResultStore &store, const std::string &id,
                const std::string &canon_cfg, unsigned repeats)
{
    return store.derivedKey(
        {"bench-workload", id, canon_cfg, std::to_string(repeats)});
}

bool
loadWorkloadCell(ResultStore &store, const CellKey &key,
                 const std::string &id, WorkloadBench &wb)
{
    std::string payload;
    if (!store.loadCell(key, "bench", payload))
        return false;
    JsonValue doc;
    std::string err;
    std::uint64_t ops = 0, p50 = 0, p99 = 0, wall = 0;
    if (!parseJson(payload, doc, err) || !doc.isObject())
        return false;
    const JsonValue *idv = doc.find("id");
    if (idv == nullptr || !idv->isString() || idv->str != id)
        return false;
    if (!cellU64(doc, "trace_ops", wb.traceOps) ||
        !cellU64(doc, "cycles", wb.cycles) ||
        !cellU64(doc, "digest", wb.digest) ||
        !cellU64(doc, "ops_per_sec_bits", ops) ||
        !cellU64(doc, "p50_bits", p50) || !cellU64(doc, "p99_bits", p99) ||
        !cellU64(doc, "serial_wall_bits", wall))
        return false;
    wb.id = id;
    wb.opsPerSec = fromBits(ops);
    wb.p50OpNs = fromBits(p50);
    wb.p99OpNs = fromBits(p99);
    wb.serialWallSec = fromBits(wall);
    return true;
}

void
storeWorkloadCell(ResultStore &store, const CellKey &key,
                  const WorkloadBench &wb)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.member("id", std::string_view(wb.id));
    w.member("trace_ops", wb.traceOps);
    w.member("cycles", wb.cycles);
    w.member("digest", wb.digest);
    w.member("ops_per_sec_bits", bits(wb.opsPerSec));
    w.member("p50_bits", bits(wb.p50OpNs));
    w.member("p99_bits", bits(wb.p99OpNs));
    w.member("serial_wall_bits", bits(wb.serialWallSec));
    w.endObject();
    store.storeCell(key, "bench", os.str());
}

CellKey
totalsCellKey(const ResultStore &store, const std::string &canon_cfg,
              const BenchOptions &opts)
{
    return store.derivedKey({"bench-totals", canon_cfg,
                             std::to_string(opts.repeats),
                             opts.smoke ? "smoke" : "full",
                             std::to_string(opts.jobs)});
}

bool
loadTotalsCell(ResultStore &store, const CellKey &key, BenchReport &report)
{
    std::string payload;
    if (!store.loadCell(key, "bench-totals", payload))
        return false;
    JsonValue doc;
    std::string err;
    std::uint64_t wall = 0, jobs_n = 0;
    if (!parseJson(payload, doc, err) || !doc.isObject() ||
        !cellU64(doc, "jobs_n_wall_bits", wall) ||
        !cellU64(doc, "jobs_n", jobs_n) || jobs_n == 0)
        return false;
    report.jobsNWallSec = fromBits(wall);
    report.jobsN = static_cast<unsigned>(jobs_n);
    return true;
}

void
storeTotalsCell(ResultStore &store, const CellKey &key,
                const BenchReport &report)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.member("jobs_n_wall_bits", bits(report.jobsNWallSec));
    w.member("jobs_n", static_cast<std::uint64_t>(report.jobsN));
    w.endObject();
    store.storeCell(key, "bench-totals", os.str());
}

} // namespace

BenchReport
runBench(const BenchOptions &opts)
{
    std::vector<WorkloadSpec> specs = allWorkloads();
    if (opts.smoke)
        specs.resize(std::min<std::size_t>(specs.size(), 3));
    if (opts.shardCount > 1) {
        std::vector<WorkloadSpec> mine;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (i % opts.shardCount == opts.shardIndex)
                mine.push_back(specs[i]);
        }
        specs = std::move(mine);
    }

    BenchReport report;
    report.repeats = opts.repeats;
    report.smoke = opts.smoke;

    const std::string canon_cfg =
        opts.store != nullptr ? canonicalConfigText(opts.cfg)
                              : std::string();

    // Phase 1: per-workload measurements plus the serial sweep time
    // (the sum of per-workload serial seconds — one replay each).
    // Cached cells reproduce their original measurement and skip even
    // trace synthesis; traces are kept for the jobs-N phase and
    // synthesized lazily there for workloads served from cache.
    std::vector<std::shared_ptr<const Trace>> traces(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        WorkloadBench wb;
        CellKey key;
        bool cached = false;
        if (opts.store != nullptr) {
            key = workloadCellKey(*opts.store, specs[i].id, canon_cfg,
                                  opts.repeats);
            cached = loadWorkloadCell(*opts.store, key, specs[i].id, wb);
        }
        if (!cached) {
            traces[i] = std::make_shared<const Trace>(
                TraceGenerator(specs[i]).generate());
            const auto start = Clock::now();
            wb = benchWorkload(specs[i], *traces[i], opts);
            // One replay per workload is the sweep-comparable serial
            // time; the measurement ran repeats + 1 replays.
            wb.serialWallSec = secondsSince(start) /
                               static_cast<double>(opts.repeats + 1);
            if (opts.store != nullptr)
                storeWorkloadCell(*opts.store, key, wb);
        }
        report.totalOps += wb.traceOps;
        report.totalCycles += wb.cycles;
        report.jobs1WallSec += wb.serialWallSec;
        report.workloads.push_back(std::move(wb));
    }
    if (report.jobs1WallSec > 0.0)
        report.aggregateOpsPerSec =
            static_cast<double>(report.totalOps) / report.jobs1WallSec;

    // Fleet scenario: a fixed arrival run through src/fleet, so the
    // BENCH_*.json trajectory tracks node-level throughput and latency
    // percentiles PR over PR. Sharded runs skip it (like the totals
    // phase): the scenario is a whole-node measurement.
    if (opts.shardCount == 1) {
        FleetOptions fopts;
        fopts.cfg = opts.cfg;
        fopts.cfg.fleet.invocations = opts.smoke ? 400 : 2000;
        if (opts.smoke)
            fopts.cfg.fleet.mix = "aes"; // One cheap profile run.
        fopts.jobs = opts.jobs;
        fopts.store = opts.store;
        report.fleetCfg = fopts.cfg;
        report.fleet = runFleet(fopts);
        report.fleetRan = true;
    }

    // Phase 2: the same sweep through the work-stealing engine. A
    // shard cannot measure the full sweep, so the totals cell is only
    // produced (and consumed) by unsharded runs; a post-merge full run
    // re-measures it once and caches it.
    CellKey totals_key;
    if (opts.store != nullptr && opts.shardCount == 1) {
        totals_key = totalsCellKey(*opts.store, canon_cfg, opts);
        if (loadTotalsCell(*opts.store, totals_key, report))
            return report;
    }
    std::vector<SweepTask> tasks;
    tasks.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (traces[i] == nullptr)
            traces[i] = std::make_shared<const Trace>(
                TraceGenerator(specs[i]).generate());
        tasks.push_back({specs[i], opts.cfg, RunOptions{}, traces[i], {}});
    }
    SweepOptions sweep_opts;
    sweep_opts.jobs = opts.jobs;
    SweepEngine engine(sweep_opts);
    report.jobsN = engine.effectiveJobs();
    const auto par_start = Clock::now();
    engine.run(tasks);
    report.jobsNWallSec = secondsSince(par_start);
    if (opts.store != nullptr && opts.shardCount == 1)
        storeTotalsCell(*opts.store, totals_key, report);
    return report;
}

void
writeBenchJson(std::ostream &os, const BenchReport &report)
{
    JsonWriter w(os);
    w.beginObject();
    writeSchemaHeader(w, "bench");
    w.member("git_sha", codeVersionString());
    w.member("compiler", __VERSION__);
    w.member("build_flags", MEMENTO_BUILD_FLAGS);
    w.member("smoke", report.smoke);
    w.member("repeats", report.repeats);
    w.member("jobs", report.jobsN);
    w.key("workloads").beginArray();
    for (const WorkloadBench &wb : report.workloads) {
        w.beginObject();
        w.member("id", wb.id);
        w.member("trace_ops", wb.traceOps);
        w.member("cycles", wb.cycles);
        w.member("digest", digestToHex(wb.digest));
        w.member("ops_per_sec", wb.opsPerSec);
        w.member("p50_op_ns", wb.p50OpNs);
        w.member("p99_op_ns", wb.p99OpNs);
        w.endObject();
    }
    w.endArray();
    w.key("totals").beginObject();
    w.member("workloads",
             static_cast<std::uint64_t>(report.workloads.size()));
    w.member("trace_ops", report.totalOps);
    w.member("cycles", report.totalCycles);
    w.member("jobs1_wall_sec", report.jobs1WallSec);
    w.member("jobsN_wall_sec", report.jobsNWallSec);
    w.member("aggregate_ops_per_sec", report.aggregateOpsPerSec);
    w.endObject();
    if (report.fleetRan) {
        const FleetMetrics &m = report.fleet.metrics;
        w.key("fleet").beginObject();
        w.member("arrival", report.fleet.fleet.arrival);
        w.member("invocations", report.fleet.fleet.invocations);
        w.member("cores", report.fleet.fleet.cores);
        w.member("mix", report.fleet.fleet.mix);
        w.member("completed", m.completed);
        w.member("cold_starts", m.coldStarts);
        w.member("p50_cycles", m.p50Cycles);
        w.member("p99_cycles", m.p99Cycles);
        w.member("p999_cycles", m.p999Cycles);
        w.member("p50_ms", m.latencyMs(report.fleetCfg, m.p50Cycles));
        w.member("p99_ms", m.latencyMs(report.fleetCfg, m.p99Cycles));
        w.member("p999_ms", m.latencyMs(report.fleetCfg, m.p999Cycles));
        w.member("throughput_rps", m.throughputRps(report.fleetCfg));
        w.member("cold_start_rate", m.coldStartRate());
        w.member("packing_density", m.packingDensity());
        w.member("digest", digestToHex(m.digest));
        w.endObject();
    }
    w.endObject();
    w.complete();
}

void
printBenchText(std::ostream &os, const BenchReport &report)
{
    os << "workload                  ops        ops/s    p50ns   p99ns\n";
    for (const WorkloadBench &wb : report.workloads) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "%-22s %8llu %12.0f %8.1f %7.1f\n", wb.id.c_str(),
                      static_cast<unsigned long long>(wb.traceOps),
                      wb.opsPerSec, wb.p50OpNs, wb.p99OpNs);
        os << line;
    }
    char tail[200];
    std::snprintf(tail, sizeof tail,
                  "sweep: %.3fs at 1 job, %.3fs at %u job(s); "
                  "%.0f ops/s aggregate\n",
                  report.jobs1WallSec, report.jobsNWallSec, report.jobsN,
                  report.aggregateOpsPerSec);
    os << tail;
    if (report.fleetRan) {
        const FleetMetrics &m = report.fleet.metrics;
        char fleet_line[200];
        std::snprintf(fleet_line, sizeof fleet_line,
                      "fleet: %llu invocations, %.1f rps, p50 %.3f ms, "
                      "p99 %.3f ms, cold %.2f%%, digest %s\n",
                      static_cast<unsigned long long>(m.completed),
                      m.throughputRps(report.fleetCfg),
                      m.latencyMs(report.fleetCfg, m.p50Cycles),
                      m.latencyMs(report.fleetCfg, m.p99Cycles),
                      m.coldStartRate() * 100.0,
                      digestToHex(m.digest).c_str());
        os << fleet_line;
    }
}

} // namespace memento
