/**
 * @file
 * Self-benchmark harness: measures the simulator simulating.
 *
 * `memento_sim bench` replays the built-in workload sweep and reports
 * how fast the *simulator* runs — trace ops replayed per wall-clock
 * second, per-op latency percentiles, and the sweep's total wall time
 * at one worker and at N workers — as a versioned JSON document
 * (kind "bench", see sim/json.h). The simulated results themselves
 * (cycle counts, machine-state digests) ride along so a bench run
 * doubles as a determinism fixture: perf numbers vary run to run, but
 * cycles and digests must be byte-identical at any --jobs level.
 *
 * Measurement recipe, per workload:
 *  - the trace is synthesized once (untimed);
 *  - `repeats` timed replays on fresh machines, each timing only the
 *    FunctionExecutor::run window; ops/s is the median;
 *  - one chunked replay (runRange in ~4 Ki-op chunks) collects per-op
 *    wall-latency samples for the p50/p99 estimate;
 *  - cycles and digest come from the first timed replay.
 *
 * The jobs-N phase re-runs the whole sweep through SweepEngine to
 * measure parallel throughput with the same work distribution the
 * `run all` command uses.
 */

#ifndef MEMENTO_BENCH_BENCH_HARNESS_H
#define MEMENTO_BENCH_BENCH_HARNESS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "sim/config.h"

namespace memento {

class ResultStore;

/** What to benchmark. */
struct BenchOptions
{
    MachineConfig cfg = defaultConfig();
    /** Reduced three-workload sweep for CI smoke jobs. */
    bool smoke = false;
    /** Timed repetitions per workload; the median is reported. */
    unsigned repeats = 3;
    /** Workers for the jobs-N phase; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /**
     * Result store for cached/resumable benching (--cache). Perf
     * numbers are wall-clock, so cached cells reproduce the *original*
     * measurement bit-for-bit — a full-hit re-run emits a
     * byte-identical report. Null disables caching. Not owned.
     */
    ResultStore *store = nullptr;
    /** Shard selection: bench workloads with index % count == index. */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
};

/** Per-workload measurements. */
struct WorkloadBench
{
    std::string id;
    std::uint64_t traceOps = 0;
    /** Simulated cycles of one replay (deterministic). */
    std::uint64_t cycles = 0;
    /** Machine-state digest after one replay (deterministic). */
    std::uint64_t digest = 0;
    /** Median replay throughput over the timed repetitions. */
    double opsPerSec = 0.0;
    /** Per-op wall latency percentiles from the chunked pass. */
    double p50OpNs = 0.0;
    double p99OpNs = 0.0;
    /**
     * Sweep-comparable serial seconds for this workload (measurement
     * wall time over repeats + 1 replays). Feeds the report's
     * jobs1_wall_sec total; not itself in the JSON document.
     */
    double serialWallSec = 0.0;
};

/** The full bench result. */
struct BenchReport
{
    std::vector<WorkloadBench> workloads;
    unsigned repeats = 0;
    bool smoke = false;
    std::uint64_t totalOps = 0;
    std::uint64_t totalCycles = 0;
    /** Whole-sweep wall seconds, one run per workload. */
    double jobs1WallSec = 0.0;
    double jobsNWallSec = 0.0;
    /** Effective worker count of the jobs-N phase. */
    unsigned jobsN = 1;
    /** totalOps / jobs1WallSec. */
    double aggregateOpsPerSec = 0.0;
    /**
     * Fleet scenario (src/fleet) benched alongside the sweep: a fixed
     * Poisson arrival run (400 invocations in smoke mode, 2000 in
     * full) whose throughput and latency percentiles land in the
     * BENCH_*.json trajectory. Entirely integer-derived, so it is
     * byte-identical across --jobs levels and cache resumes. Skipped
     * (fleetRan == false) by sharded runs, like the totals phase.
     */
    bool fleetRan = false;
    FleetReport fleet;
    /** Config the fleet scenario ran under (for cycle->ms rendering). */
    MachineConfig fleetCfg;
};

/** Run the benchmark (drives real simulations; takes seconds). */
BenchReport runBench(const BenchOptions &opts);

/** Serialize @p report as the versioned "bench" JSON document. */
void writeBenchJson(std::ostream &os, const BenchReport &report);

/** One-line-per-workload text rendering for terminals. */
void printBenchText(std::ostream &os, const BenchReport &report);

} // namespace memento

#endif // MEMENTO_BENCH_BENCH_HARNESS_H
