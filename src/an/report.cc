#include "an/report.h"

#include <iomanip>
#include <sstream>

#include "sim/logging.h"

namespace memento {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::newRow()
{
    rows_.emplace_back();
}

void
TextTable::cell(const std::string &value)
{
    panic_if(rows_.empty(), "cell() before newRow()");
    panic_if(rows_.back().size() >= headers_.size(),
             "row has more cells than headers");
    rows_.back().push_back(value);
}

void
TextTable::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    cell(os.str());
}

void
TextTable::cell(std::uint64_t value)
{
    cell(std::to_string(value));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();
        }
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &value = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << value;
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t line = 0;
    for (std::size_t w : widths)
        line += w + 2;
    os << std::string(line, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

std::string
percentStr(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << '%';
    return os.str();
}

std::string
asciiBar(double fraction, unsigned width)
{
    if (fraction < 0.0)
        fraction = 0.0;
    if (fraction > 1.0)
        fraction = 1.0;
    const unsigned filled =
        static_cast<unsigned>(fraction * width + 0.5);
    std::string bar(filled, '#');
    bar.append(width - filled, '.');
    return bar;
}

} // namespace memento
