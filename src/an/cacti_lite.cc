#include "an/cacti_lite.h"

namespace memento {

CactiLite::CactiLite(double tech_nm) : tech_nm_(tech_nm) {}

SramCost
CactiLite::estimate(std::uint64_t bytes) const
{
    // Two-point linear calibration at 22 nm.
    const double area_per_byte =
        (kHotArea - kAacArea) / (kHotBytes - kAacBytes);
    const double area_fixed = kAacArea - area_per_byte * kAacBytes;
    const double power_per_byte =
        (kHotPower - kAacPower) / (kHotBytes - kAacBytes);
    const double power_fixed = kAacPower - power_per_byte * kAacBytes;

    const double node_scale = tech_nm_ / 22.0;
    SramCost cost;
    cost.areaMm2 = (area_fixed + area_per_byte * bytes) * node_scale *
                   node_scale;
    cost.powerMw = (power_fixed + power_per_byte * bytes) * node_scale;
    if (cost.areaMm2 < 0.0)
        cost.areaMm2 = 0.0;
    if (cost.powerMw < 0.0)
        cost.powerMw = 0.0;
    return cost;
}

SramCost
CactiLite::hotCost() const
{
    return estimate(static_cast<std::uint64_t>(kHotBytes));
}

SramCost
CactiLite::aacCost() const
{
    return estimate(static_cast<std::uint64_t>(kAacBytes));
}

} // namespace memento
