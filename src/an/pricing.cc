#include "an/pricing.h"

#include <cmath>

namespace memento {

double
PricingModel::runtimeCostUsd(double exec_ms, double mem_mb) const
{
    const double billed_ms =
        std::ceil(exec_ms / granularityMs) * granularityMs;
    const double mem_gb = std::ceil(mem_mb) / 1024.0;
    return billed_ms / 1000.0 * mem_gb * usdPerGbSecond;
}

double
PricingModel::totalCostUsd(double exec_ms, double mem_mb) const
{
    return runtimeCostUsd(exec_ms, mem_mb) + usdPerInvocation;
}

} // namespace memento
