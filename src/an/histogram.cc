#include "an/histogram.h"

#include <sstream>

#include "sim/logging.h"

namespace memento {

Histogram::Histogram(std::vector<std::uint64_t> edges)
    : edges_(std::move(edges)), counts_(edges_.size(), 0)
{
    fatal_if(edges_.empty(), "histogram with no edges");
    for (std::size_t i = 1; i < edges_.size(); ++i)
        fatal_if(edges_[i] <= edges_[i - 1], "histogram edges not sorted");
}

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    std::size_t bucket = 0;
    while (bucket + 1 < edges_.size() && value >= edges_[bucket + 1])
        ++bucket;
    counts_[bucket] += weight;
    total_ += weight;
}

std::uint64_t
Histogram::count(std::size_t bucket) const
{
    panic_if(bucket >= counts_.size(), "histogram bucket out of range");
    return counts_[bucket];
}

double
Histogram::percent(std::size_t bucket) const
{
    if (total_ == 0)
        return 0.0;
    return 100.0 * static_cast<double>(count(bucket)) /
           static_cast<double>(total_);
}

std::string
Histogram::label(std::size_t bucket) const
{
    panic_if(bucket >= counts_.size(), "histogram bucket out of range");
    std::ostringstream os;
    os << '[' << edges_[bucket] << ", ";
    if (bucket + 1 < edges_.size())
        os << edges_[bucket + 1] - 1;
    else
        os << "Inf";
    os << ']';
    return os.str();
}

void
Histogram::merge(const Histogram &other)
{
    panic_if(edges_ != other.edges_, "merging incompatible histograms");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

Histogram
Histogram::allocationSize()
{
    std::vector<std::uint64_t> edges;
    for (std::uint64_t lo = 1; lo <= 4097; lo += 512)
        edges.push_back(lo);
    return Histogram(std::move(edges));
}

Histogram
Histogram::lifetime()
{
    std::vector<std::uint64_t> edges;
    for (std::uint64_t lo = 1; lo <= 257; lo += 16)
        edges.push_back(lo);
    return Histogram(std::move(edges));
}

} // namespace memento
