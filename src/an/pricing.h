/**
 * @file
 * Serverless function pricing model (§6.5, Fig. 14), following the
 * public AWS Lambda price book: execution billed per started
 * millisecond times the memory grant in GB, plus an optional fixed
 * per-invocation (request) fee.
 */

#ifndef MEMENTO_AN_PRICING_H
#define MEMENTO_AN_PRICING_H

#include <cstdint>

namespace memento {

/** Lambda-style pricing. */
struct PricingModel
{
    /** USD per GB-second of execution (x86 tier-1 price). */
    double usdPerGbSecond = 0.0000166667;
    /** USD per request (fixed per-invocation infrastructure fee). */
    double usdPerInvocation = 0.0000002;
    /** Billing granularity in milliseconds. */
    double granularityMs = 1.0;

    /**
     * Runtime cost only (no per-invocation fee): the Fig. 14 metric.
     * @param exec_ms Function execution time.
     * @param mem_mb Billed memory in MB (rounded up to 1 MB).
     */
    double runtimeCostUsd(double exec_ms, double mem_mb) const;

    /** End-to-end cost including the per-invocation fee (§6.5). */
    double totalCostUsd(double exec_ms, double mem_mb) const;
};

} // namespace memento

#endif // MEMENTO_AN_PRICING_H
