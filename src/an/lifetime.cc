#include "an/lifetime.h"

#include <unordered_map>
#include <vector>

#include "sim/size_class.h"

namespace memento {

TraceProfile
profileTrace(const Trace &trace)
{
    TraceProfile profile;

    struct LiveObj
    {
        std::uint64_t size = 0;
        unsigned cls = 0;
        std::uint64_t bornAt = 0; ///< Class counter at allocation.
    };
    // Class counters: one per small class plus one shared large stream.
    std::vector<std::uint64_t> class_count(kNumSmallClasses + 1, 0);
    std::unordered_map<std::uint64_t, LiveObj> live;

    std::uint64_t compute_instructions = 0;
    std::uint64_t small_short = 0, small_long = 0;
    std::uint64_t large_short = 0, large_long = 0;

    auto classify = [&](const LiveObj &obj, std::uint64_t distance,
                        bool freed) {
        const bool small = obj.size <= kMaxSmallSize;
        const bool short_lived = freed && distance <= kShortLivedDistance;
        if (small && short_lived)
            ++small_short;
        else if (small)
            ++small_long;
        else if (short_lived)
            ++large_short;
        else
            ++large_long;
        profile.lifetimeHist.add(
            freed ? (distance == 0 ? 1 : distance) : 100000);
    };

    for (const TraceOp &op : trace) {
        switch (op.kind) {
          case OpKind::Compute:
            compute_instructions += op.value;
            break;
          case OpKind::Malloc: {
            ++profile.allocations;
            profile.sizeHist.add(op.value);
            LiveObj obj;
            obj.size = op.value;
            obj.cls = op.value <= kMaxSmallSize
                          ? sizeClassIndex(op.value)
                          : kNumSmallClasses;
            obj.bornAt = ++class_count[obj.cls];
            live[op.objId] = obj;
            break;
          }
          case OpKind::Free: {
            ++profile.frees;
            auto it = live.find(op.objId);
            if (it == live.end())
                break;
            const LiveObj &obj = it->second;
            const std::uint64_t distance =
                class_count[obj.cls] - obj.bornAt;
            classify(obj, distance, /*freed=*/true);
            live.erase(it);
            break;
          }
          default:
            break;
        }
    }

    // Everything still live is batch-freed at exit: long-lived. The
    // loop only bumps commutative counters, so visit order is moot.
    for (const auto &[id, obj] :
         live) // lint-src: allow(src-unordered-iteration)
        classify(obj, 0, /*freed=*/false);

    const std::uint64_t classified =
        small_short + small_long + large_short + large_long;
    if (classified > 0) {
        const double n = static_cast<double>(classified);
        profile.joint.smallShort = small_short / n;
        profile.joint.smallLong = small_long / n;
        profile.joint.largeShort = large_short / n;
        profile.joint.largeLong = large_long / n;
    }
    if (compute_instructions > 0) {
        profile.mallocPki = 1000.0 *
                            static_cast<double>(profile.allocations) /
                            static_cast<double>(compute_instructions);
    }
    return profile;
}

} // namespace memento
