/**
 * @file
 * A small analytic SRAM area/power model standing in for CACTI 6.5
 * (Table 3's HOT/AAC cost estimates).
 *
 * The model is a per-bit area and per-access/leakage power scaling law
 * at a 22 nm node, calibrated so the two structures the paper reports
 * land on the published numbers: HOT (3.4 KB direct-mapped) at
 * 0.0084 mm^2 / 1.32 mW and AAC (32-entry direct-mapped) at
 * 0.0023 mm^2 / 0.43 mW. Other sizes interpolate/extrapolate on the
 * same law, which is adequate for sensitivity-style estimates.
 */

#ifndef MEMENTO_AN_CACTI_LITE_H
#define MEMENTO_AN_CACTI_LITE_H

#include <cstdint>

namespace memento {

/** Estimated SRAM structure cost. */
struct SramCost
{
    double areaMm2 = 0.0;
    double powerMw = 0.0;
};

/** The analytic model. */
class CactiLite
{
  public:
    /** Technology node in nanometers (the paper uses 22 nm). */
    explicit CactiLite(double tech_nm = 22.0);

    /**
     * Estimate a direct-mapped SRAM structure.
     * @param bytes Total capacity (data + tags/metadata).
     */
    SramCost estimate(std::uint64_t bytes) const;

    /** HOT at its Table 3 configuration (3.4 KB). */
    SramCost hotCost() const;
    /** AAC at its Table 3 configuration (32 x 34 B entries ~ 1.1 KB). */
    SramCost aacCost() const;

  private:
    double tech_nm_;
    // Calibrated law: cost = fixed + perByte * bytes, defined at 22 nm
    // and scaled quadratically (area) / linearly (power) with feature
    // size for other nodes.
    static constexpr double kHotBytes = 3481.6; // 3.4 KB
    static constexpr double kAacBytes = 1088.0; // 32 x 34 B
    static constexpr double kHotArea = 0.0084;
    static constexpr double kAacArea = 0.0023;
    static constexpr double kHotPower = 1.32;
    static constexpr double kAacPower = 0.43;
};

} // namespace memento

#endif // MEMENTO_AN_CACTI_LITE_H
