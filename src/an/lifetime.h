/**
 * @file
 * Allocation-trace characterization: the §2.2 metrics.
 *
 * Computes allocation-size and malloc-free-distance histograms (Figs.
 * 2–3) and the joint size/lifetime distribution (Table 1) from a
 * workload trace. Distance is measured exactly as the paper defines
 * it: the number of same-size-class allocations between an object's
 * malloc and its free; never-freed objects count as long-lived (the
 * [257, Inf] tail).
 */

#ifndef MEMENTO_AN_LIFETIME_H
#define MEMENTO_AN_LIFETIME_H

#include "an/histogram.h"
#include "wl/trace.h"

namespace memento {

/** Joint size x lifetime shares (Table 1). */
struct JointDistribution
{
    double smallShort = 0.0;
    double smallLong = 0.0;
    double largeShort = 0.0;
    double largeLong = 0.0;
};

/** Characterization of one trace. */
struct TraceProfile
{
    Histogram sizeHist = Histogram::allocationSize();
    Histogram lifetimeHist = Histogram::lifetime();
    JointDistribution joint;
    std::uint64_t allocations = 0;
    std::uint64_t frees = 0;
    /** malloc per kilo-instruction, from the trace's compute budget. */
    double mallocPki = 0.0;
};

/** Analyze @p trace (§2.2's instrumentation, offline). */
TraceProfile profileTrace(const Trace &trace);

/** Distance at or below which an allocation counts as short-lived. */
inline constexpr std::uint64_t kShortLivedDistance = 16;

} // namespace memento

#endif // MEMENTO_AN_LIFETIME_H
