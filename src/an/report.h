/**
 * @file
 * Text rendering helpers shared by the benchmark binaries: fixed-width
 * tables and ASCII bars so each bench prints rows directly comparable
 * to the paper's figures.
 */

#ifndef MEMENTO_AN_REPORT_H
#define MEMENTO_AN_REPORT_H

#include <ostream>
#include <string>
#include <vector>

namespace memento {

/** Builds and prints a fixed-width text table. */
class TextTable
{
  public:
    /** @param headers Column titles (define the column count). */
    explicit TextTable(std::vector<std::string> headers);

    /** Start a new row; fill it with cell() calls. */
    void newRow();
    void cell(const std::string &value);
    void cell(double value, int precision = 2);
    void cell(std::uint64_t value);

    /** Render with column alignment and a header separator. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p fraction as a percentage string like "16.3%". */
std::string percentStr(double fraction, int precision = 1);

/** An ASCII bar of @p fraction (0..1) scaled to @p width chars. */
std::string asciiBar(double fraction, unsigned width = 40);

} // namespace memento

#endif // MEMENTO_AN_REPORT_H
