/**
 * @file
 * Fixed-bucket histograms plus the exact bucketings used by the paper's
 * characterization figures (Fig. 2 allocation sizes in 512 B steps,
 * Fig. 3 malloc-free distances in 16-allocation steps).
 */

#ifndef MEMENTO_AN_HISTOGRAM_H
#define MEMENTO_AN_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace memento {

/** A histogram over [edge[i], edge[i+1]) buckets with a +Inf tail. */
class Histogram
{
  public:
    /** @param edges Ascending bucket lower bounds; first is the min. */
    explicit Histogram(std::vector<std::uint64_t> edges);

    /** Count @p value into its bucket (values below edges[0] clamp). */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Number of buckets (edges.size()). */
    std::size_t buckets() const { return counts_.size(); }

    std::uint64_t count(std::size_t bucket) const;
    std::uint64_t total() const { return total_; }

    /** Percentage of the total in @p bucket (0 when empty). */
    double percent(std::size_t bucket) const;

    /** Bucket label like "[1, 512]" or "[4097, Inf]". */
    std::string label(std::size_t bucket) const;

    /** Merge another histogram with identical edges. */
    void merge(const Histogram &other);

    /** Fig. 2 bucketing: 512 B steps up to 4096, then +Inf. */
    static Histogram allocationSize();

    /** Fig. 3 bucketing: 16-allocation steps up to 256, then +Inf. */
    static Histogram lifetime();

  private:
    std::vector<std::uint64_t> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace memento

#endif // MEMENTO_AN_HISTOGRAM_H
