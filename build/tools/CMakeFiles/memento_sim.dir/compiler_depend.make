# Empty compiler generated dependencies file for memento_sim.
# This may be replaced when dependencies are built.
