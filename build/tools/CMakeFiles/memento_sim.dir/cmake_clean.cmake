file(REMOVE_RECURSE
  "CMakeFiles/memento_sim.dir/memento_sim.cc.o"
  "CMakeFiles/memento_sim.dir/memento_sim.cc.o.d"
  "memento_sim"
  "memento_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memento_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
