# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/memento_sim" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_baseline "/root/repo/build/tools/memento_sim" "run" "aes")
set_tests_properties(cli_run_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_memento "/root/repo/build/tools/memento_sim" "run" "aes" "--memento" "--set" "memento.bypass=off")
set_tests_properties(cli_run_memento PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_roundtrip "/root/repo/build/tools/memento_sim" "trace" "aes" "/root/repo/build/tools/aes.trace")
set_tests_properties(cli_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_replay "/root/repo/build/tools/memento_sim" "run" "aes" "--trace" "/root/repo/build/tools/aes.trace")
set_tests_properties(cli_run_replay PROPERTIES  DEPENDS "cli_trace_roundtrip" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/memento_sim" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
