# Empty dependencies file for memento_tests.
# This may be replaced when dependencies are built.
