
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocators.cc" "tests/CMakeFiles/memento_tests.dir/test_allocators.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_allocators.cc.o.d"
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/memento_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_buddy.cc" "tests/CMakeFiles/memento_tests.dir/test_buddy.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_buddy.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/memento_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_config_file.cc" "tests/CMakeFiles/memento_tests.dir/test_config_file.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_config_file.cc.o.d"
  "/root/repo/tests/test_edge_cases.cc" "tests/CMakeFiles/memento_tests.dir/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_edge_cases.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/memento_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_hw.cc" "tests/CMakeFiles/memento_tests.dir/test_hw.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_hw.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/memento_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/memento_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/memento_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/memento_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/memento_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/memento_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_vm.cc" "tests/CMakeFiles/memento_tests.dir/test_vm.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_vm.cc.o.d"
  "/root/repo/tests/test_workload_properties.cc" "tests/CMakeFiles/memento_tests.dir/test_workload_properties.cc.o" "gcc" "tests/CMakeFiles/memento_tests.dir/test_workload_properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/memento.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
