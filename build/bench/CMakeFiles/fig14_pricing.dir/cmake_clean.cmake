file(REMOVE_RECURSE
  "CMakeFiles/fig14_pricing.dir/fig14_pricing.cc.o"
  "CMakeFiles/fig14_pricing.dir/fig14_pricing.cc.o.d"
  "fig14_pricing"
  "fig14_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
