# Empty dependencies file for fig14_pricing.
# This may be replaced when dependencies are built.
