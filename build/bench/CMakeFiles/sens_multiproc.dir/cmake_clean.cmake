file(REMOVE_RECURSE
  "CMakeFiles/sens_multiproc.dir/sens_multiproc.cc.o"
  "CMakeFiles/sens_multiproc.dir/sens_multiproc.cc.o.d"
  "sens_multiproc"
  "sens_multiproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_multiproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
