# Empty compiler generated dependencies file for sens_multiproc.
# This may be replaced when dependencies are built.
