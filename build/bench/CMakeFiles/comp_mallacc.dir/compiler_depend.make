# Empty compiler generated dependencies file for comp_mallacc.
# This may be replaced when dependencies are built.
