file(REMOVE_RECURSE
  "CMakeFiles/comp_mallacc.dir/comp_mallacc.cc.o"
  "CMakeFiles/comp_mallacc.dir/comp_mallacc.cc.o.d"
  "comp_mallacc"
  "comp_mallacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comp_mallacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
