# Empty compiler generated dependencies file for fig12_hot_hitrate.
# This may be replaced when dependencies are built.
