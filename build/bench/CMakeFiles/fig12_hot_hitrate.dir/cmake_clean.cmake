file(REMOVE_RECURSE
  "CMakeFiles/fig12_hot_hitrate.dir/fig12_hot_hitrate.cc.o"
  "CMakeFiles/fig12_hot_hitrate.dir/fig12_hot_hitrate.cc.o.d"
  "fig12_hot_hitrate"
  "fig12_hot_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hot_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
