# Empty dependencies file for abl_design.
# This may be replaced when dependencies are built.
