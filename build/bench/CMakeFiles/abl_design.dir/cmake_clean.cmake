file(REMOVE_RECURSE
  "CMakeFiles/abl_design.dir/abl_design.cc.o"
  "CMakeFiles/abl_design.dir/abl_design.cc.o.d"
  "abl_design"
  "abl_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
