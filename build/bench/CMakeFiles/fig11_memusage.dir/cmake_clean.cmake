file(REMOVE_RECURSE
  "CMakeFiles/fig11_memusage.dir/fig11_memusage.cc.o"
  "CMakeFiles/fig11_memusage.dir/fig11_memusage.cc.o.d"
  "fig11_memusage"
  "fig11_memusage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_memusage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
