# Empty dependencies file for fig11_memusage.
# This may be replaced when dependencies are built.
