file(REMOVE_RECURSE
  "CMakeFiles/sens_coldstart.dir/sens_coldstart.cc.o"
  "CMakeFiles/sens_coldstart.dir/sens_coldstart.cc.o.d"
  "sens_coldstart"
  "sens_coldstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
