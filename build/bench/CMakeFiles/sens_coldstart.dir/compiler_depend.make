# Empty compiler generated dependencies file for sens_coldstart.
# This may be replaced when dependencies are built.
