file(REMOVE_RECURSE
  "CMakeFiles/fig03_lifetime.dir/fig03_lifetime.cc.o"
  "CMakeFiles/fig03_lifetime.dir/fig03_lifetime.cc.o.d"
  "fig03_lifetime"
  "fig03_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
