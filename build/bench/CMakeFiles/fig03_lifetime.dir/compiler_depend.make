# Empty compiler generated dependencies file for fig03_lifetime.
# This may be replaced when dependencies are built.
