file(REMOVE_RECURSE
  "CMakeFiles/tab02_cycles.dir/tab02_cycles.cc.o"
  "CMakeFiles/tab02_cycles.dir/tab02_cycles.cc.o.d"
  "tab02_cycles"
  "tab02_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
