# Empty dependencies file for tab02_cycles.
# This may be replaced when dependencies are built.
