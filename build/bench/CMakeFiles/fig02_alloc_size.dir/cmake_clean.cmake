file(REMOVE_RECURSE
  "CMakeFiles/fig02_alloc_size.dir/fig02_alloc_size.cc.o"
  "CMakeFiles/fig02_alloc_size.dir/fig02_alloc_size.cc.o.d"
  "fig02_alloc_size"
  "fig02_alloc_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_alloc_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
