# Empty dependencies file for fig02_alloc_size.
# This may be replaced when dependencies are built.
