file(REMOVE_RECURSE
  "CMakeFiles/sens_populate.dir/sens_populate.cc.o"
  "CMakeFiles/sens_populate.dir/sens_populate.cc.o.d"
  "sens_populate"
  "sens_populate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_populate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
