# Empty dependencies file for sens_populate.
# This may be replaced when dependencies are built.
