# Empty dependencies file for sens_thp.
# This may be replaced when dependencies are built.
