file(REMOVE_RECURSE
  "CMakeFiles/sens_thp.dir/sens_thp.cc.o"
  "CMakeFiles/sens_thp.dir/sens_thp.cc.o.d"
  "sens_thp"
  "sens_thp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_thp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
