file(REMOVE_RECURSE
  "CMakeFiles/sens_tuning.dir/sens_tuning.cc.o"
  "CMakeFiles/sens_tuning.dir/sens_tuning.cc.o.d"
  "sens_tuning"
  "sens_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
