# Empty dependencies file for sens_tuning.
# This may be replaced when dependencies are built.
