file(REMOVE_RECURSE
  "CMakeFiles/tab01_joint.dir/tab01_joint.cc.o"
  "CMakeFiles/tab01_joint.dir/tab01_joint.cc.o.d"
  "tab01_joint"
  "tab01_joint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
