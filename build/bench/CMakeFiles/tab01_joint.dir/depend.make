# Empty dependencies file for tab01_joint.
# This may be replaced when dependencies are built.
