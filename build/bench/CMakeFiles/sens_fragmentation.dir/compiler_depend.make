# Empty compiler generated dependencies file for sens_fragmentation.
# This may be replaced when dependencies are built.
