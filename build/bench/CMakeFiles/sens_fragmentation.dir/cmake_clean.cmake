file(REMOVE_RECURSE
  "CMakeFiles/sens_fragmentation.dir/sens_fragmentation.cc.o"
  "CMakeFiles/sens_fragmentation.dir/sens_fragmentation.cc.o.d"
  "sens_fragmentation"
  "sens_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
