file(REMOVE_RECURSE
  "CMakeFiles/sens_iso_storage.dir/sens_iso_storage.cc.o"
  "CMakeFiles/sens_iso_storage.dir/sens_iso_storage.cc.o.d"
  "sens_iso_storage"
  "sens_iso_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_iso_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
