# Empty compiler generated dependencies file for sens_iso_storage.
# This may be replaced when dependencies are built.
