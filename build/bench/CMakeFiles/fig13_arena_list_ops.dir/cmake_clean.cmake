file(REMOVE_RECURSE
  "CMakeFiles/fig13_arena_list_ops.dir/fig13_arena_list_ops.cc.o"
  "CMakeFiles/fig13_arena_list_ops.dir/fig13_arena_list_ops.cc.o.d"
  "fig13_arena_list_ops"
  "fig13_arena_list_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_arena_list_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
