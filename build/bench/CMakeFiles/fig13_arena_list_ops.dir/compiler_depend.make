# Empty compiler generated dependencies file for fig13_arena_list_ops.
# This may be replaced when dependencies are built.
