file(REMOVE_RECURSE
  "CMakeFiles/serverless_function.dir/serverless_function.cc.o"
  "CMakeFiles/serverless_function.dir/serverless_function.cc.o.d"
  "serverless_function"
  "serverless_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
