# Empty compiler generated dependencies file for serverless_function.
# This may be replaced when dependencies are built.
