# Empty dependencies file for memento.
# This may be replaced when dependencies are built.
