
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/an/cacti_lite.cc" "src/CMakeFiles/memento.dir/an/cacti_lite.cc.o" "gcc" "src/CMakeFiles/memento.dir/an/cacti_lite.cc.o.d"
  "/root/repo/src/an/histogram.cc" "src/CMakeFiles/memento.dir/an/histogram.cc.o" "gcc" "src/CMakeFiles/memento.dir/an/histogram.cc.o.d"
  "/root/repo/src/an/lifetime.cc" "src/CMakeFiles/memento.dir/an/lifetime.cc.o" "gcc" "src/CMakeFiles/memento.dir/an/lifetime.cc.o.d"
  "/root/repo/src/an/pricing.cc" "src/CMakeFiles/memento.dir/an/pricing.cc.o" "gcc" "src/CMakeFiles/memento.dir/an/pricing.cc.o.d"
  "/root/repo/src/an/report.cc" "src/CMakeFiles/memento.dir/an/report.cc.o" "gcc" "src/CMakeFiles/memento.dir/an/report.cc.o.d"
  "/root/repo/src/hw/arena.cc" "src/CMakeFiles/memento.dir/hw/arena.cc.o" "gcc" "src/CMakeFiles/memento.dir/hw/arena.cc.o.d"
  "/root/repo/src/hw/bypass.cc" "src/CMakeFiles/memento.dir/hw/bypass.cc.o" "gcc" "src/CMakeFiles/memento.dir/hw/bypass.cc.o.d"
  "/root/repo/src/hw/hot.cc" "src/CMakeFiles/memento.dir/hw/hot.cc.o" "gcc" "src/CMakeFiles/memento.dir/hw/hot.cc.o.d"
  "/root/repo/src/hw/hw_object_allocator.cc" "src/CMakeFiles/memento.dir/hw/hw_object_allocator.cc.o" "gcc" "src/CMakeFiles/memento.dir/hw/hw_object_allocator.cc.o.d"
  "/root/repo/src/hw/hw_page_allocator.cc" "src/CMakeFiles/memento.dir/hw/hw_page_allocator.cc.o" "gcc" "src/CMakeFiles/memento.dir/hw/hw_page_allocator.cc.o.d"
  "/root/repo/src/hw/mallacc.cc" "src/CMakeFiles/memento.dir/hw/mallacc.cc.o" "gcc" "src/CMakeFiles/memento.dir/hw/mallacc.cc.o.d"
  "/root/repo/src/hw/memento_allocator.cc" "src/CMakeFiles/memento.dir/hw/memento_allocator.cc.o" "gcc" "src/CMakeFiles/memento.dir/hw/memento_allocator.cc.o.d"
  "/root/repo/src/machine/breakdown.cc" "src/CMakeFiles/memento.dir/machine/breakdown.cc.o" "gcc" "src/CMakeFiles/memento.dir/machine/breakdown.cc.o.d"
  "/root/repo/src/machine/experiment.cc" "src/CMakeFiles/memento.dir/machine/experiment.cc.o" "gcc" "src/CMakeFiles/memento.dir/machine/experiment.cc.o.d"
  "/root/repo/src/machine/function_executor.cc" "src/CMakeFiles/memento.dir/machine/function_executor.cc.o" "gcc" "src/CMakeFiles/memento.dir/machine/function_executor.cc.o.d"
  "/root/repo/src/machine/machine.cc" "src/CMakeFiles/memento.dir/machine/machine.cc.o" "gcc" "src/CMakeFiles/memento.dir/machine/machine.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/memento.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/memento.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/cache_hierarchy.cc" "src/CMakeFiles/memento.dir/mem/cache_hierarchy.cc.o" "gcc" "src/CMakeFiles/memento.dir/mem/cache_hierarchy.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/memento.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/memento.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_controller.cc" "src/CMakeFiles/memento.dir/mem/memory_controller.cc.o" "gcc" "src/CMakeFiles/memento.dir/mem/memory_controller.cc.o.d"
  "/root/repo/src/mem/page_walker.cc" "src/CMakeFiles/memento.dir/mem/page_walker.cc.o" "gcc" "src/CMakeFiles/memento.dir/mem/page_walker.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/memento.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/memento.dir/mem/tlb.cc.o.d"
  "/root/repo/src/os/buddy_allocator.cc" "src/CMakeFiles/memento.dir/os/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/memento.dir/os/buddy_allocator.cc.o.d"
  "/root/repo/src/os/kernel_cost.cc" "src/CMakeFiles/memento.dir/os/kernel_cost.cc.o" "gcc" "src/CMakeFiles/memento.dir/os/kernel_cost.cc.o.d"
  "/root/repo/src/os/page_table.cc" "src/CMakeFiles/memento.dir/os/page_table.cc.o" "gcc" "src/CMakeFiles/memento.dir/os/page_table.cc.o.d"
  "/root/repo/src/os/process.cc" "src/CMakeFiles/memento.dir/os/process.cc.o" "gcc" "src/CMakeFiles/memento.dir/os/process.cc.o.d"
  "/root/repo/src/os/virtual_memory.cc" "src/CMakeFiles/memento.dir/os/virtual_memory.cc.o" "gcc" "src/CMakeFiles/memento.dir/os/virtual_memory.cc.o.d"
  "/root/repo/src/rt/allocator.cc" "src/CMakeFiles/memento.dir/rt/allocator.cc.o" "gcc" "src/CMakeFiles/memento.dir/rt/allocator.cc.o.d"
  "/root/repo/src/rt/glibc_large.cc" "src/CMakeFiles/memento.dir/rt/glibc_large.cc.o" "gcc" "src/CMakeFiles/memento.dir/rt/glibc_large.cc.o.d"
  "/root/repo/src/rt/gomalloc.cc" "src/CMakeFiles/memento.dir/rt/gomalloc.cc.o" "gcc" "src/CMakeFiles/memento.dir/rt/gomalloc.cc.o.d"
  "/root/repo/src/rt/jemalloc.cc" "src/CMakeFiles/memento.dir/rt/jemalloc.cc.o" "gcc" "src/CMakeFiles/memento.dir/rt/jemalloc.cc.o.d"
  "/root/repo/src/rt/pymalloc.cc" "src/CMakeFiles/memento.dir/rt/pymalloc.cc.o" "gcc" "src/CMakeFiles/memento.dir/rt/pymalloc.cc.o.d"
  "/root/repo/src/rt/tcmalloc.cc" "src/CMakeFiles/memento.dir/rt/tcmalloc.cc.o" "gcc" "src/CMakeFiles/memento.dir/rt/tcmalloc.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/memento.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/memento.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/config_file.cc" "src/CMakeFiles/memento.dir/sim/config_file.cc.o" "gcc" "src/CMakeFiles/memento.dir/sim/config_file.cc.o.d"
  "/root/repo/src/sim/cycles.cc" "src/CMakeFiles/memento.dir/sim/cycles.cc.o" "gcc" "src/CMakeFiles/memento.dir/sim/cycles.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/memento.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/memento.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/memento.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/memento.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/memento.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/memento.dir/sim/stats.cc.o.d"
  "/root/repo/src/wl/distributions.cc" "src/CMakeFiles/memento.dir/wl/distributions.cc.o" "gcc" "src/CMakeFiles/memento.dir/wl/distributions.cc.o.d"
  "/root/repo/src/wl/trace.cc" "src/CMakeFiles/memento.dir/wl/trace.cc.o" "gcc" "src/CMakeFiles/memento.dir/wl/trace.cc.o.d"
  "/root/repo/src/wl/trace_generator.cc" "src/CMakeFiles/memento.dir/wl/trace_generator.cc.o" "gcc" "src/CMakeFiles/memento.dir/wl/trace_generator.cc.o.d"
  "/root/repo/src/wl/workloads.cc" "src/CMakeFiles/memento.dir/wl/workloads.cc.o" "gcc" "src/CMakeFiles/memento.dir/wl/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
