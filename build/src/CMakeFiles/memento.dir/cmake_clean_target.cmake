file(REMOVE_RECURSE
  "libmemento.a"
)
